//! Machine-readable performance summary for the repo's hot paths: blocked
//! vs. naive matmul, sparse vs. dense GNN kernels, grid vs. brute-force
//! crowd neighbor queries, serial vs. parallel experiment cells, cached vs.
//! uncached training epochs, the matmul dispatch crossover table, shared
//! scene-engine context builds, the f64-train / f32-serve recommend split,
//! incremental O(Δ) scene maintenance vs. from-scratch across coherence
//! levels, crowd-scale K-candidate pruned serving vs. dense full-N on
//! stadium frames, and the cost of running with observability installed vs.
//! without.
//!
//! Writes one JSON summary (default `BENCH_pr10.json` at the workspace root,
//! next to `Cargo.toml`; override with `--out=PATH`) via the `xr_obs` JSON
//! exporter and prints it to stdout. All "before" numbers are the
//! pre-overhaul code paths, which are kept callable behind flags
//! (`matmul_naive`, `dense_kernels`, `use_spatial_grid: false`,
//! `AFTER_THREADS=1`, `fresh_mia`/`fresh_tape`, `serve_f32: false`), so the
//! comparison runs both sides in one build. Historical `BENCH_pr*.json`
//! files stay committed as published; this binary only writes the current
//! summary. Compare two summaries with the `bench_compare` binary.
//!
//! Usage: `cargo run --release -p xr-eval --bin bench_summary [--out=PATH]`
//! Accepts `--trace[=PATH]` / `--metrics[=PATH]` (or `AFTER_TRACE` /
//! `AFTER_METRICS`) to additionally capture the instrumented kernels'
//! own telemetry while the benchmarks run.

use std::time::Instant;

use poshgnn::{PoshGnn, PoshGnnConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xr_crowd::{Agent, CrowdSimulator, Room, SimConfig};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::report::results_dir;
use xr_eval::runner::{build_contexts, pick_targets, run_comparison, run_method, ComparisonConfig};
use xr_graph::geom::Point2;
use xr_obs::json::{num3, Json};
use xr_tensor::{CsrAdj, Matrix};

/// Median wall-clock milliseconds of `f` over `reps` runs (after one warmup).
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect()).unwrap()
}

fn bench_matmul() -> Json {
    let mut rng = StdRng::seed_from_u64(1);
    let shapes = [(128usize, 128usize, 128usize), (256, 256, 256), (512, 512, 512), (200, 16, 200)];
    let rows: Vec<Json> = shapes
        .iter()
        .map(|&(m, k, n)| {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let naive = time_ms(5, || {
                std::hint::black_box(a.matmul_naive(&b));
            });
            let blocked = time_ms(5, || {
                std::hint::black_box(a.matmul(&b));
            });
            Json::obj()
                .set("m", m)
                .set("k", k)
                .set("n", n)
                .set("naive_ms", num3(naive))
                .set("blocked_ms", num3(blocked))
                .set("speedup", num3(naive / blocked))
        })
        .collect();
    Json::from(rows)
}

fn bench_spmm() -> Json {
    // adjacency with ~6 neighbors per node, the occlusion-graph regime
    let n = 500usize;
    let cols = 16usize;
    let mut rng = StdRng::seed_from_u64(2);
    let mut entries = Vec::new();
    for i in 0..n {
        for _ in 0..6 {
            entries.push((i, rng.gen_range(0..n), 1.0));
        }
    }
    let csr = CsrAdj::from_entries(n, n, &entries).row_normalized();
    let dense = csr.to_dense();
    let x = random_matrix(n, cols, &mut rng);
    let dense_ms = time_ms(9, || {
        std::hint::black_box(dense.matmul(&x));
    });
    let sparse_ms = time_ms(9, || {
        std::hint::black_box(csr.matmul_dense(&x));
    });
    Json::obj()
        .set("n", n)
        .set("cols", cols)
        .set("nnz", csr.nnz())
        .set("dense_ms", num3(dense_ms))
        .set("sparse_ms", num3(sparse_ms))
        .set("speedup", num3(dense_ms / sparse_ms))
}

fn bench_crowd() -> Json {
    let n = 500usize;
    let mut rng = StdRng::seed_from_u64(3);
    let room = 22.0; // ~1 agent/m², the paper's dense-room regime
    let agents: Vec<Agent> = (0..n)
        .map(|_| {
            Agent::new(
                Point2::new(rng.gen_range(0.5..room - 0.5), rng.gen_range(0.5..room - 0.5)),
                Point2::new(rng.gen_range(0.5..room - 0.5), rng.gen_range(0.5..room - 0.5)),
            )
        })
        .collect();
    let steps = 10;
    let run = |use_grid: bool| {
        let config = SimConfig { use_spatial_grid: use_grid, ..SimConfig::default() };
        time_ms(3, || {
            let mut sim = CrowdSimulator::new(agents.clone(), Room::new(room, room), config);
            for _ in 0..steps {
                sim.step();
            }
            std::hint::black_box(sim.positions());
        })
    };
    let brute_ms = run(false);
    let grid_ms = run(true);
    Json::obj()
        .set("n", n)
        .set("steps", steps as u64)
        .set("brute_ms", num3(brute_ms))
        .set("grid_ms", num3(grid_ms))
        .set("speedup", num3(brute_ms / grid_ms))
}

fn bench_poshgnn_step() -> Json {
    let dataset = Dataset::generate(DatasetKind::Timik, 2);
    let sizes = [100usize, 200];
    let rows: Vec<Json> = sizes
        .iter()
        .map(|&n| {
            let scenario_cfg =
                ScenarioConfig { n_participants: n, time_steps: 30, seed: 11, ..ScenarioConfig::default() };
            let scenario = dataset.sample_scenario(&scenario_cfg);
            let ctxs = build_contexts(&scenario, &pick_targets(&scenario, 2, 7), 0.5);
            let mut ms = [0.0f64; 2];
            for (slot, dense) in [(0usize, false), (1, true)] {
                let mut model = PoshGnn::new(PoshGnnConfig { dense_kernels: dense, ..Default::default() });
                model.train(&ctxs, 2); // params only; step cost is training-independent
                ms[slot] = run_method(&mut model, &ctxs).ms_per_step;
            }
            Json::obj()
                .set("n", n)
                .set("sparse_ms_per_step", num3(ms[0]))
                .set("dense_ms_per_step", num3(ms[1]))
                .set("speedup", num3(ms[1] / ms[0]))
        })
        .collect();
    Json::from(rows)
}

fn bench_recommend_serve() -> Json {
    // Full recommend step on a trained snapshot: the f64 inference path vs.
    // the f32 serving path (SIMD kernels behind runtime dispatch). Both
    // models import the same trained weights, so only the serving precision
    // and kernels differ — the train path itself stays f64 in both arms.
    let dataset = Dataset::generate(DatasetKind::Timik, 2);
    let sizes = [100usize, 200];
    let rows: Vec<Json> = sizes
        .iter()
        .map(|&n| {
            let scenario_cfg =
                ScenarioConfig { n_participants: n, time_steps: 30, seed: 11, ..ScenarioConfig::default() };
            let scenario = dataset.sample_scenario(&scenario_cfg);
            let ctxs = build_contexts(&scenario, &pick_targets(&scenario, 2, 7), 0.5);
            let mut trained = PoshGnn::new(PoshGnnConfig { serve_f32: false, ..Default::default() });
            trained.train(&ctxs, 2);
            let snapshot = trained.export_params();
            let mut ms = [0.0f64; 2];
            for (slot, serve_f32) in [(0usize, false), (1, true)] {
                let mut model = PoshGnn::new(PoshGnnConfig { serve_f32, ..Default::default() });
                assert!(model.import_params(&snapshot), "snapshot shape mismatch");
                ms[slot] = run_method(&mut model, &ctxs).ms_per_step;
            }
            Json::obj()
                .set("n", n)
                .set("time_steps", 30u64)
                .set("f64_ms_per_step", num3(ms[0]))
                .set("f32_ms_per_step", num3(ms[1]))
                .set("speedup", num3(ms[0] / ms[1]))
        })
        .collect();
    Json::obj().set("simd", xr_tensor::simd_enabled()).set("sizes", Json::from(rows))
}

/// Steady-state per-epoch training wall time for two configurations: train
/// identically seeded models for 1 and 4 epochs and difference, so model
/// construction, the MIA slab precompute, and pool warm-up (one-time costs)
/// cancel out. The two configurations' samples are interleaved (one of each
/// per round) so background-load drift on a shared machine hits both arms
/// equally instead of skewing whichever happened to run second, and each
/// arm reports its median over 5 samples after a discarded warmup run.
/// Returns the per-epoch medians in argument order.
fn per_epoch_ms_paired(a: PoshGnnConfig, b: PoshGnnConfig, ctxs: &[poshgnn::TargetContext]) -> (f64, f64) {
    let run = |cfg: PoshGnnConfig, epochs: usize| {
        let mut model = PoshGnn::new(cfg);
        let start = Instant::now();
        std::hint::black_box(model.train(ctxs, epochs));
        start.elapsed().as_secs_f64() * 1e3
    };
    run(a, 1); // warm the allocator and page in the dataset
    run(b, 1);
    let sample = |cfg: PoshGnnConfig| {
        let t1 = run(cfg, 1);
        let t4 = run(cfg, 4);
        ((t4 - t1) / 3.0).max(0.0)
    };
    let mut sa = Vec::new();
    let mut sb = Vec::new();
    for _ in 0..5 {
        sa.push(sample(a));
        sb.push(sample(b));
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(|x, y| x.partial_cmp(y).unwrap());
        v[v.len() / 2]
    };
    (median(sa), median(sb))
}

fn episode_contexts(n: usize, seed: u64) -> Vec<poshgnn::TargetContext> {
    let dataset = Dataset::generate(DatasetKind::Timik, 4);
    let scenario_cfg =
        ScenarioConfig { n_participants: n, time_steps: 30, seed, ..ScenarioConfig::default() };
    let scenario = dataset.sample_scenario(&scenario_cfg);
    build_contexts(&scenario, &pick_targets(&scenario, 1, 5), 0.5)
}

fn bench_train_epoch() -> Json {
    let sizes = [100usize, 200];
    let rows: Vec<Json> = sizes
        .iter()
        .map(|&n| {
            let ctxs = episode_contexts(n, 13);
            let (uncached, cached) = per_epoch_ms_paired(
                PoshGnnConfig { fresh_mia: true, fresh_tape: true, ..Default::default() },
                PoshGnnConfig { fresh_mia: false, fresh_tape: false, ..Default::default() },
                &ctxs,
            );
            Json::obj()
                .set("n", n)
                .set("time_steps", 30u64)
                .set("uncached_ms_per_epoch", num3(uncached))
                .set("cached_ms_per_epoch", num3(cached))
                .set("speedup", num3(uncached / cached))
        })
        .collect();
    Json::from(rows)
}

fn bench_tape_reuse() -> Json {
    // MIA cache on for both sides: only the tape strategy differs.
    let ctxs = episode_contexts(100, 17);
    let (fresh, pooled) = per_epoch_ms_paired(
        PoshGnnConfig { fresh_mia: false, fresh_tape: true, ..Default::default() },
        PoshGnnConfig { fresh_mia: false, fresh_tape: false, ..Default::default() },
        &ctxs,
    );
    Json::obj()
        .set("n", 100u64)
        .set("time_steps", 30u64)
        .set("fresh_tape_ms_per_epoch", num3(fresh))
        .set("pooled_tape_ms_per_epoch", num3(pooled))
        .set("speedup", num3(fresh / pooled))
}

fn bench_matmul_dispatch() -> Json {
    let mut rng = StdRng::seed_from_u64(5);
    let shapes: [(usize, usize, usize); 10] = [
        (8, 8, 8),
        (16, 16, 16),
        (32, 32, 32),
        (48, 48, 48),
        (64, 64, 64),
        (96, 96, 96),
        (128, 128, 128),
        (192, 192, 192),
        (256, 256, 256),
        (200, 16, 200),
    ];
    let rows: Vec<Json> = shapes
        .iter()
        .map(|&(m, k, n)| {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let flops = m * k * n;
            // batch small multiplies so each sample is long enough to time
            let iters = (4_000_000 / flops).max(1);
            let naive = time_ms(9, || {
                for _ in 0..iters {
                    std::hint::black_box(a.matmul_naive(&b));
                }
            });
            let dispatched = time_ms(9, || {
                for _ in 0..iters {
                    std::hint::black_box(a.matmul(&b));
                }
            });
            let packed = flops >= Matrix::MATMUL_DISPATCH_THRESHOLD && k >= Matrix::MATMUL_PACK_MIN_K;
            Json::obj()
                .set("m", m)
                .set("k", k)
                .set("n", n)
                .set("kernel", if packed { "packed" } else { "chunked" })
                .set("naive_ms", num3(naive / iters as f64))
                .set("dispatched_ms", num3(dispatched / iters as f64))
                .set("speedup", num3(naive / dispatched))
        })
        .collect();
    Json::obj()
        .set("threshold_flops", Matrix::MATMUL_DISPATCH_THRESHOLD as u64)
        .set("pack_min_k", Matrix::MATMUL_PACK_MIN_K as u64)
        .set("sizes", Json::from(rows))
}

fn bench_scene_build() -> Json {
    // Context construction for every participant in the room: the shared
    // scene engine builds distances / occlusion / masks once per tick and
    // serves all targets from that state (O(N²·T)), while the legacy path
    // recomputes them per target (O(N³·T)).
    let dataset = Dataset::generate(DatasetKind::Timik, 6);
    let sizes = [100usize, 200];
    let rows: Vec<Json> = sizes
        .iter()
        .map(|&n| {
            let scenario_cfg =
                ScenarioConfig { n_participants: n, time_steps: 20, seed: 21, ..ScenarioConfig::default() };
            let scenario = dataset.sample_scenario(&scenario_cfg);
            let requests: Vec<(usize, f64)> = (0..n).map(|v| (v, 0.5)).collect();
            let run = |streaming: bool| {
                std::env::set_var("AFTER_STREAMING", if streaming { "1" } else { "0" });
                let ms = time_ms(3, || {
                    std::hint::black_box(poshgnn::TargetContext::batch(&scenario, &requests));
                });
                std::env::remove_var("AFTER_STREAMING");
                ms
            };
            let precompute = run(false);
            let engine = run(true);
            Json::obj()
                .set("n", n)
                .set("time_steps", 20u64)
                .set("targets", n as u64)
                .set("precompute_ms", num3(precompute))
                .set("engine_ms", num3(engine))
                .set("speedup", num3(precompute / engine))
        })
        .collect();
    Json::from(rows)
}

fn bench_parallel_runner() -> Json {
    let dataset = Dataset::generate(DatasetKind::Hubs, 1);
    let cfg = ComparisonConfig {
        scenario: ScenarioConfig { n_participants: 40, time_steps: 20, seed: 9, ..ScenarioConfig::default() },
        n_targets: 2,
        train_epochs: 20,
        include_comurnet: false,
        ..ComparisonConfig::paper_defaults(ScenarioConfig::default())
    };
    let wall = |threads: Option<usize>| {
        match threads {
            Some(t) => std::env::set_var("AFTER_THREADS", t.to_string()),
            None => std::env::remove_var("AFTER_THREADS"),
        }
        let start = Instant::now();
        std::hint::black_box(run_comparison(&dataset, &cfg));
        start.elapsed().as_secs_f64()
    };
    let serial_s = wall(Some(1));
    let parallel_s = wall(None);
    std::env::remove_var("AFTER_THREADS");
    Json::obj()
        .set("methods", 7u64)
        .set("threads", xr_eval::thread_count())
        .set("serial_s", num3(serial_s))
        .set("parallel_s", num3(parallel_s))
        .set("speedup", num3(serial_s / parallel_s))
}

/// The observability tax on the two hottest loops at N=200: a full train
/// epoch and a full recommend step, each run with an installed
/// metrics+series+recorder [`xr_obs::ObsCtx`] and with no context at all.
/// Each round runs both arms back-to-back (min of 3 inner repeats per arm,
/// discarding scheduler spikes) and the reported numbers are the medians of
/// the per-round values over 9 rounds, so machine-load drift cannot
/// masquerade as probe overhead. The acceptance bound is <3%.
fn bench_obs_overhead() -> Json {
    let n = 200usize;
    let rounds = 9usize;
    let inner = 3usize;
    let ctxs = episode_contexts(n, 23);

    // train epoch: 1-vs-4-epoch differencing cancels one-time setup costs.
    // The minima of t1 and t4 are taken separately per arm before
    // differencing — min(t4 - t1) would pair a lucky t4 with an unlucky t1
    // and fabricate low samples.
    let train_sample = |obs_on: bool| {
        let obs = obs_on.then(|| xr_obs::ObsCtx::new(true, false));
        let _guard = obs.as_ref().map(xr_obs::ObsCtx::install);
        let run = |epochs: usize| {
            let mut model = PoshGnn::new(PoshGnnConfig::default());
            let start = Instant::now();
            std::hint::black_box(model.train(&ctxs, epochs));
            start.elapsed().as_secs_f64() * 1e3
        };
        let t1 = run(1);
        let t4 = run(4);
        (t1, t4)
    };
    train_sample(false); // warmup both arms
    train_sample(true);
    let mut train_off = (Vec::new(), Vec::new());
    let mut train_on = (Vec::new(), Vec::new());
    for round in 0..rounds {
        // alternate arms sample by sample so load ramps on a shared machine
        // penalize both arms symmetrically
        for rep in 0..2 * inner {
            let (arm, on) =
                if (rep + round) % 2 == 0 { (&mut train_off, false) } else { (&mut train_on, true) };
            let (t1, t4) = train_sample(on);
            arm.0.push(t1);
            arm.1.push(t4);
        }
    }

    // recommend step: one shared trained snapshot, measured through the same
    // run_method loop the experiment tables use
    let mut trained = PoshGnn::new(PoshGnnConfig::default());
    trained.train(&ctxs, 2);
    let snapshot = trained.export_params();
    let step_sample = |obs_on: bool| {
        let obs = obs_on.then(|| xr_obs::ObsCtx::new(true, false));
        let _guard = obs.as_ref().map(xr_obs::ObsCtx::install);
        let mut model = PoshGnn::new(PoshGnnConfig::default());
        assert!(model.import_params(&snapshot), "snapshot shape mismatch");
        run_method(&mut model, &ctxs).ms_per_step
    };
    step_sample(false);
    step_sample(true);
    let mut step_off = Vec::new();
    let mut step_on = Vec::new();
    for round in 0..rounds {
        for rep in 0..2 * inner {
            if (rep + round) % 2 == 0 {
                step_off.push(step_sample(false));
            } else {
                step_on.push(step_sample(true));
            }
        }
    }

    // The two arms interleave across the whole measurement span, so each
    // arm's minimum reflects the machine's quietest moments equally —
    // per-sample interference (co-tenants on shared runners) inflates means
    // and medians but not the interleaved minima.
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let arm = |off_ms: f64, on_ms: f64| {
        Json::obj()
            .set("off_ms", num3(off_ms))
            .set("on_ms", num3(on_ms))
            .set("overhead_pct", num3((on_ms - off_ms) / off_ms * 100.0))
    };
    let per_epoch = |(t1s, t4s): &(Vec<f64>, Vec<f64>)| ((min(t4s) - min(t1s)) / 3.0).max(0.0);
    Json::obj()
        .set("n", n)
        .set("train_epoch", arm(per_epoch(&train_off), per_epoch(&train_on)))
        .set("recommend_step", arm(min(&step_off), min(&step_on)))
}

/// Multi-room serving throughput: 1k+ concurrent `SceneEngine` rooms on the
/// shared worker pool, one frame per room per pump round, with a generous
/// SLO budget installed so the whole admission/ladder machinery is live.
/// Reports rooms×rounds throughput and the p50/p99 of the per-frame
/// `serve.room.tick.ms` histogram against the budget.
fn bench_multi_room() -> Json {
    use xr_serve::{RoomConfig, RoomServer, ServerConfig};
    use xr_session::{Frame, SceneConfig};

    const ROOMS: usize = 1024;
    const ROUNDS: u64 = 60;
    const ROOM_N: usize = 8;
    const BUDGET_MS: f64 = 50.0;

    // own metrics context: the serving histogram must not mix with whatever
    // telemetry the CLI env installed for the run as a whole
    let ctx = xr_obs::ObsCtx::new(true, false);
    let _guard = ctx.install();

    let scene = SceneConfig {
        body_radius: 0.2,
        mr_mask: (0..ROOM_N).map(|i| i % 2 == 0).collect(),
        room_diagonal: 8.0 * std::f64::consts::SQRT_2,
    };
    let walk_frame = |room_seed: u64, tick: u64| {
        let mut rng = StdRng::seed_from_u64(room_seed ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Frame::new(
            (0..ROOM_N).map(|_| Point2::new(rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0))).collect(),
        )
    };

    let mut server = RoomServer::new(ServerConfig {
        max_rooms: ROOMS,
        slo: Some(xr_obs::SloConfig::new(BUDGET_MS)),
        ..ServerConfig::default()
    });
    let ids: Vec<_> = (0..ROOMS)
        .map(|_| server.admit(RoomConfig::new(ROOM_N, scene.clone(), vec![0, 3])).expect("under the cap"))
        .collect();

    let start = Instant::now();
    let mut processed = 0usize;
    for round in 0..ROUNDS {
        for &id in &ids {
            server.enqueue(id, walk_frame(id.0, round));
        }
        processed += server.pump().frames();
    }
    let wall_s = start.elapsed().as_secs_f64();

    let stats = server.stats();
    let snapshot = xr_obs::metrics_snapshot().expect("metrics context installed");
    let tick = snapshot.histogram("serve.room.tick.ms").expect("tick histogram exists");
    Json::obj()
        .set("rooms", ROOMS as u64)
        .set("rounds", ROUNDS)
        .set("room_n", ROOM_N as u64)
        .set("workers", server.config().workers)
        .set("frames", processed as u64)
        .set("frames_per_s", num3(processed as f64 / wall_s))
        .set("budget_ms", num3(BUDGET_MS))
        .set("tick_p50_ms", num3(tick.p50))
        .set("tick_p99_ms", num3(tick.p99))
        .set("tick_max_ms", num3(tick.max))
        .set("slo_missed", snapshot.counter("slo.serve.room.tick.deadline_miss").unwrap_or(0))
        .set("shed_frames", stats.shed)
        .set("degrade_transitions", stats.transitions)
}

/// Incremental O(Δ) scene maintenance vs. the from-scratch oracle: the same
/// coherence-swept workload (bounded ORCA walks shaped by a
/// [`xr_datasets::MotionProfile`]) pushed through two engines differing only
/// in `set_incremental`. Tick 0 — a full build on both sides — is pushed
/// outside the timed span, so the numbers are steady-state maintenance cost
/// per tick. Coherence is the lever: the dwell-heavy end moves few users per
/// tick (maximal warm-cache reuse), the teleport storm moves everyone
/// (delta path degenerates to full rebuilds plus bookkeeping).
fn bench_incremental_scene() -> Json {
    use xr_datasets::{generate_trajectories_with_motion, MotionProfile};
    use xr_session::{Frame, SceneConfig, SceneEngine};

    // `jitter_snap` is the designed serving workload: anchors hold (heavy
    // dwell), emitted positions carry sub-epsilon head-tracking noise, and
    // the engine's ingest snap (AFTER_SNAP_EPS-style, set on BOTH arms —
    // snapping is shared semantics, not an incremental-only shortcut)
    // absorbs the noise so the incremental path sees true deltas only.
    let levels: [(&str, MotionProfile, f64); 5] = [
        (
            "jitter_snap",
            MotionProfile { max_step: Some(0.3), teleport_prob: 0.0, dwell_prob: 0.995, jitter: 0.01 },
            0.05,
        ),
        (
            "dwell_heavy",
            MotionProfile { max_step: Some(0.05), teleport_prob: 0.0, dwell_prob: 0.9, jitter: 0.0 },
            0.0,
        ),
        (
            "bounded_walk",
            MotionProfile { max_step: Some(0.05), teleport_prob: 0.0, dwell_prob: 0.0, jitter: 0.0 },
            0.0,
        ),
        (
            "mixed",
            MotionProfile { max_step: Some(0.25), teleport_prob: 0.05, dwell_prob: 0.3, jitter: 0.0 },
            0.0,
        ),
        (
            "teleport_storm",
            MotionProfile { max_step: None, teleport_prob: 1.0, dwell_prob: 0.0, jitter: 0.0 },
            0.0,
        ),
    ];
    // (n, room side, ticks, reps): the serving-scale row runs once — at
    // N=1000 a single sweep is already seconds of scratch work per level
    let configs = [(200usize, 12.0f64, 30usize, 3usize), (1000, 40.0, 8, 1)];
    let viewer_count = 8usize;

    let rows: Vec<Json> = configs
        .iter()
        .map(|&(n, side, ticks, reps)| {
            let level_rows: Vec<Json> = levels
                .iter()
                .map(|(name, profile, snap_eps)| {
                    let mut rng = StdRng::seed_from_u64(31);
                    let frames = generate_trajectories_with_motion(
                        n,
                        ticks,
                        Room::new(side, side),
                        0.2,
                        profile,
                        &mut rng,
                    );
                    let scene = SceneConfig {
                        body_radius: 0.2,
                        mr_mask: (0..n).map(|i| i % 2 == 0).collect(),
                        room_diagonal: side * std::f64::consts::SQRT_2,
                    };
                    let viewers: Vec<usize> = (0..viewer_count).map(|i| i * (n / viewer_count)).collect();
                    let run = |incremental: bool| {
                        let mut engine = SceneEngine::new(n, scene.clone(), &viewers);
                        engine.set_incremental(incremental);
                        engine.set_snap_epsilon(*snap_eps); // both arms: shared ingest semantics
                        engine.set_state_retention(Some(2)); // the serving posture
                        engine.push(Frame::new(frames[0].clone()));
                        let start = Instant::now();
                        for f in &frames[1..] {
                            engine.push(Frame::new(f.clone()));
                        }
                        let total = start.elapsed().as_secs_f64() * 1e3;
                        std::hint::black_box(engine.ticks());
                        total / (frames.len() - 1) as f64
                    };
                    run(false); // warmup both arms
                    run(true);
                    let mut scratch_samples = Vec::new();
                    let mut incremental_samples = Vec::new();
                    for _ in 0..reps {
                        // interleaved arms: load drift hits both sides equally
                        scratch_samples.push(run(false));
                        incremental_samples.push(run(true));
                    }
                    let median = |mut v: Vec<f64>| {
                        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        v[v.len() / 2]
                    };
                    let scratch_ms = median(scratch_samples);
                    let incremental_ms = median(incremental_samples);
                    Json::obj()
                        .set("coherence", *name)
                        .set("snap_epsilon", num3(*snap_eps))
                        .set("scratch_ms_per_tick", num3(scratch_ms))
                        .set("incremental_ms_per_tick", num3(incremental_ms))
                        .set("speedup", num3(scratch_ms / incremental_ms))
                })
                .collect();
            Json::obj()
                .set("n", n)
                .set("ticks", ticks as u64)
                .set("viewers", viewer_count as u64)
                .set("room_side", num3(side))
                .set("levels", Json::from(level_rows))
        })
        .collect();
    Json::from(rows)
}

/// Crowd-scale serving: the K-candidate pruned scene path (hierarchical
/// spatial index + per-viewer shortlists, `AFTER_PRUNE_K`-equivalent) vs.
/// the dense full-N build, on stadium frames from the venue generator.
/// The full arm is skipped at N = 50k — a dense N×N distance matrix alone
/// is 20 GB there, which is the point of the pruned path — and runs with
/// retention 1 (the serving posture) where it does run. Each timed tick
/// includes the per-viewer top-k decisions, so the rows are end-to-end
/// frame→recommendation serving cost.
fn bench_crowd_scale() -> Json {
    use xr_datasets::{VenueConfig, VenueSim};
    use xr_session::{Frame, SceneConfig, SceneEngine};

    let viewer_count = 16usize;
    let ks = [64usize, 256];
    // (n, timed ticks, run the dense full-N arm?)
    let configs: [(usize, usize, bool); 3] = [(1000, 12, true), (10_000, 6, true), (50_000, 3, false)];

    let rows: Vec<Json> = configs
        .iter()
        .map(|&(n, ticks, full_arm)| {
            let venue = VenueConfig::stadium(n, 0xBEEF);
            let mut sim = VenueSim::new(venue);
            let frames: Vec<Vec<_>> = (0..=ticks).map(|_| sim.next_frame()).collect();
            let scene = SceneConfig {
                body_radius: venue.body_radius,
                mr_mask: venue.mr_mask(),
                room_diagonal: venue.room_diagonal(),
            };
            let viewers: Vec<usize> = (0..viewer_count).map(|i| i * (n / viewer_count)).collect();

            // per-tick wall times for one arm; the decision per viewer is
            // inside the measurement (that's what a serving tick does)
            let run = |prune_k: usize| -> Vec<f64> {
                let mut engine = SceneEngine::new(n, scene.clone(), &viewers);
                engine.set_prune_k(prune_k);
                engine.set_state_retention(Some(1));
                engine.push(Frame::new(frames[0].clone()));
                let mut samples = Vec::with_capacity(ticks);
                for f in &frames[1..] {
                    let frame = Frame::new(f.clone());
                    let start = Instant::now();
                    let t = engine.push(frame);
                    for &v in engine.viewers() {
                        let view = engine.view(v, t);
                        let decision = if let Some(cs) = view.candidates() {
                            let mut out = vec![false; n];
                            for w in cs.decide_topk(5) {
                                out[w as usize] = true;
                            }
                            out
                        } else {
                            xr_serve::decide_topk_f64(view.candidate_mask(), view.distances(), 5)
                        };
                        std::hint::black_box(decision);
                    }
                    samples.push(start.elapsed().as_secs_f64() * 1e3);
                }
                samples
            };
            let stats = |samples: &[f64]| -> (f64, f64) {
                let mean = samples.iter().sum::<f64>() / samples.len() as f64;
                let mut sorted = samples.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let p99 = sorted[((sorted.len() as f64 * 0.99).ceil() as usize - 1).min(sorted.len() - 1)];
                (mean, p99)
            };

            let full_ms = if full_arm {
                let (mean, _) = stats(&run(0));
                Some(mean)
            } else {
                None
            };
            let k_rows: Vec<Json> = ks
                .iter()
                .map(|&k| {
                    let (mean, p99) = stats(&run(k));
                    let mut row = Json::obj()
                        .set("k", k as u64)
                        .set("pruned_ms_per_tick", num3(mean))
                        .set("p99_ms", num3(p99))
                        .set("frames_per_s", num3(1e3 / mean));
                    if let Some(full) = full_ms {
                        row = row.set("speedup", num3(full / mean));
                    }
                    row
                })
                .collect();
            let mut row =
                Json::obj().set("n", n as u64).set("ticks", ticks as u64).set("viewers", viewer_count as u64);
            if let Some(full) = full_ms {
                row = row.set("full_ms_per_tick", num3(full));
            }
            row.set("pruned", Json::from(k_rows))
        })
        .collect();
    Json::from(rows)
}

/// Output path for the summary: `--out=PATH` (or `--out PATH`) on the
/// command line, default `BENCH_pr10.json` at the workspace root.
fn out_path() -> std::path::PathBuf {
    let root = results_dir().parent().map(|p| p.to_path_buf()).unwrap_or_default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(path) = arg.strip_prefix("--out=") {
            return path.into();
        }
        if arg == "--out" {
            if let Some(path) = args.next() {
                return path.into();
            }
        }
    }
    root.join("BENCH_pr10.json")
}

fn main() {
    let mut obs = xr_obs::init_cli_env();
    let path = out_path();
    eprintln!("[1/14] blocked vs naive matmul");
    let matmul = bench_matmul();
    eprintln!("[2/14] sparse vs dense aggregation (SpMM)");
    let spmm = bench_spmm();
    eprintln!("[3/14] grid vs brute-force crowd neighbors");
    let crowd = bench_crowd();
    eprintln!("[4/14] POSHGNN recommend step, sparse vs dense kernels");
    let posh = bench_poshgnn_step();
    eprintln!("[5/14] comparison runner, 1 thread vs all cores");
    let runner = bench_parallel_runner();
    eprintln!("[6/14] train epoch, MIA cache + tape arena vs uncached");
    let train_epoch = bench_train_epoch();
    eprintln!("[7/14] tape arena reuse vs fresh tape per episode");
    let tape_reuse = bench_tape_reuse();
    eprintln!("[8/14] adaptive matmul dispatch crossover");
    let dispatch = bench_matmul_dispatch();
    eprintln!("[9/14] scene build, shared engine vs per-target precompute");
    let scene_build = bench_scene_build();
    eprintln!("[10/14] recommend step, f64 inference vs f32 serving");
    let recommend_serve = bench_recommend_serve();
    eprintln!("[11/14] observability overhead, installed ctx vs none");
    let obs_overhead = bench_obs_overhead();
    eprintln!("[12/14] multi-room serving: 1k rooms on the worker pool");
    let multi_room = bench_multi_room();
    eprintln!("[13/14] incremental scene maintenance vs from-scratch, coherence sweep");
    let incremental_scene = bench_incremental_scene();
    eprintln!("[14/14] crowd-scale serving: K-candidate pruned vs dense full-N");
    let crowd_scale = bench_crowd_scale();

    // force SIMD detection so the fact lands in the run metadata
    let _ = xr_tensor::simd_enabled();
    let summary = Json::obj()
        .set("matmul", matmul)
        .set("spmm", spmm)
        .set("crowd_step", crowd)
        .set("poshgnn_step", posh)
        .set("comparison_runner", runner)
        .set("train_epoch", train_epoch)
        .set("tape_reuse", tape_reuse)
        .set("matmul_dispatch", dispatch)
        .set("scene_build", scene_build)
        .set("recommend_serve", recommend_serve)
        .set("obs_overhead", obs_overhead)
        .set("multi_room", multi_room)
        .set("incremental_scene", incremental_scene)
        .set("crowd_scale", crowd_scale)
        .set("meta", xr_obs::meta::run_metadata());
    let text = summary.pretty();
    println!("{text}");
    match xr_obs::meta::write_atomic(&path, &format!("{text}\n")) {
        Ok(()) => eprintln!("[written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
    obs.finish();
}
