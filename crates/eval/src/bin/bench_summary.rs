//! Machine-readable performance summary for the hot-path overhaul: blocked
//! vs. naive matmul, sparse vs. dense GNN kernels, grid vs. brute-force
//! crowd neighbor queries, and serial vs. parallel experiment cells.
//!
//! Writes `BENCH_pr1.json` at the workspace root (next to `Cargo.toml`) and
//! prints it to stdout. All "before" numbers are the pre-overhaul code
//! paths, which are kept callable behind flags (`matmul_naive`,
//! `dense_kernels`, `use_spatial_grid: false`, `AFTER_THREADS=1`), so the
//! comparison runs both sides in one build.
//!
//! Usage: `cargo run --release -p xr-eval --bin bench_summary`

use std::fmt::Write as _;
use std::time::Instant;

use poshgnn::{PoshGnn, PoshGnnConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xr_crowd::{Agent, CrowdSimulator, Room, SimConfig};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::report::results_dir;
use xr_eval::runner::{build_contexts, pick_targets, run_comparison, run_method, ComparisonConfig};
use xr_graph::geom::Point2;
use xr_tensor::{CsrAdj, Matrix};

/// Median wall-clock milliseconds of `f` over `reps` runs (after one warmup).
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect()).unwrap()
}

fn bench_matmul(out: &mut String) {
    let mut rng = StdRng::seed_from_u64(1);
    out.push_str("  \"matmul\": [\n");
    let shapes = [(128usize, 128usize, 128usize), (256, 256, 256), (512, 512, 512), (200, 16, 200)];
    for (idx, &(m, k, n)) in shapes.iter().enumerate() {
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let naive = time_ms(5, || {
            std::hint::black_box(a.matmul_naive(&b));
        });
        let blocked = time_ms(5, || {
            std::hint::black_box(a.matmul(&b));
        });
        let comma = if idx + 1 < shapes.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"naive_ms\": {naive:.3}, \"blocked_ms\": {blocked:.3}, \"speedup\": {:.2}}}{comma}",
            naive / blocked
        );
    }
    out.push_str("  ],\n");
}

fn bench_spmm(out: &mut String) {
    // adjacency with ~6 neighbors per node, the occlusion-graph regime
    let n = 500usize;
    let cols = 16usize;
    let mut rng = StdRng::seed_from_u64(2);
    let mut entries = Vec::new();
    for i in 0..n {
        for _ in 0..6 {
            entries.push((i, rng.gen_range(0..n), 1.0));
        }
    }
    let csr = CsrAdj::from_entries(n, n, &entries).row_normalized();
    let dense = csr.to_dense();
    let x = random_matrix(n, cols, &mut rng);
    let dense_ms = time_ms(9, || {
        std::hint::black_box(dense.matmul(&x));
    });
    let sparse_ms = time_ms(9, || {
        std::hint::black_box(csr.matmul_dense(&x));
    });
    let _ = writeln!(
        out,
        "  \"spmm\": {{\"n\": {n}, \"cols\": {cols}, \"nnz\": {}, \"dense_ms\": {dense_ms:.3}, \"sparse_ms\": {sparse_ms:.3}, \"speedup\": {:.2}}},",
        csr.nnz(),
        dense_ms / sparse_ms
    );
}

fn bench_crowd(out: &mut String) {
    let n = 500usize;
    let mut rng = StdRng::seed_from_u64(3);
    let room = 22.0; // ~1 agent/m², the paper's dense-room regime
    let agents: Vec<Agent> = (0..n)
        .map(|_| {
            Agent::new(
                Point2::new(rng.gen_range(0.5..room - 0.5), rng.gen_range(0.5..room - 0.5)),
                Point2::new(rng.gen_range(0.5..room - 0.5), rng.gen_range(0.5..room - 0.5)),
            )
        })
        .collect();
    let steps = 10;
    let run = |use_grid: bool| {
        let config = SimConfig { use_spatial_grid: use_grid, ..SimConfig::default() };
        time_ms(3, || {
            let mut sim = CrowdSimulator::new(agents.clone(), Room::new(room, room), config);
            for _ in 0..steps {
                sim.step();
            }
            std::hint::black_box(sim.positions());
        })
    };
    let brute_ms = run(false);
    let grid_ms = run(true);
    let _ = writeln!(
        out,
        "  \"crowd_step\": {{\"n\": {n}, \"steps\": {steps}, \"brute_ms\": {brute_ms:.3}, \"grid_ms\": {grid_ms:.3}, \"speedup\": {:.2}}},",
        brute_ms / grid_ms
    );
}

fn bench_poshgnn_step(out: &mut String) {
    let dataset = Dataset::generate(DatasetKind::Timik, 2);
    out.push_str("  \"poshgnn_step\": [\n");
    let sizes = [100usize, 200];
    for (idx, &n) in sizes.iter().enumerate() {
        let scenario_cfg =
            ScenarioConfig { n_participants: n, time_steps: 30, seed: 11, ..ScenarioConfig::default() };
        let scenario = dataset.sample_scenario(&scenario_cfg);
        let ctxs = build_contexts(&scenario, &pick_targets(&scenario, 2, 7), 0.5);
        let mut ms = [0.0f64; 2];
        for (slot, dense) in [(0usize, false), (1, true)] {
            let mut model = PoshGnn::new(PoshGnnConfig { dense_kernels: dense, ..Default::default() });
            model.train(&ctxs, 2); // params only; step cost is training-independent
            ms[slot] = run_method(&mut model, &ctxs).ms_per_step;
        }
        let comma = if idx + 1 < sizes.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"n\": {n}, \"sparse_ms_per_step\": {:.3}, \"dense_ms_per_step\": {:.3}, \"speedup\": {:.2}}}{comma}",
            ms[0],
            ms[1],
            ms[1] / ms[0]
        );
    }
    out.push_str("  ],\n");
}

fn bench_parallel_runner(out: &mut String) {
    let dataset = Dataset::generate(DatasetKind::Hubs, 1);
    let cfg = ComparisonConfig {
        scenario: ScenarioConfig { n_participants: 40, time_steps: 20, seed: 9, ..ScenarioConfig::default() },
        n_targets: 2,
        train_epochs: 20,
        include_comurnet: false,
        ..ComparisonConfig::paper_defaults(ScenarioConfig::default())
    };
    let wall = |threads: Option<usize>| {
        match threads {
            Some(t) => std::env::set_var("AFTER_THREADS", t.to_string()),
            None => std::env::remove_var("AFTER_THREADS"),
        }
        let start = Instant::now();
        std::hint::black_box(run_comparison(&dataset, &cfg));
        start.elapsed().as_secs_f64()
    };
    let serial_s = wall(Some(1));
    let parallel_s = wall(None);
    std::env::remove_var("AFTER_THREADS");
    let _ = writeln!(
        out,
        "  \"comparison_runner\": {{\"methods\": 7, \"threads\": {}, \"serial_s\": {serial_s:.3}, \"parallel_s\": {parallel_s:.3}, \"speedup\": {:.2}}}",
        xr_eval::thread_count(),
        serial_s / parallel_s
    );
}

fn main() {
    let mut out = String::from("{\n");
    eprintln!("[1/5] blocked vs naive matmul");
    bench_matmul(&mut out);
    eprintln!("[2/5] sparse vs dense aggregation (SpMM)");
    bench_spmm(&mut out);
    eprintln!("[3/5] grid vs brute-force crowd neighbors");
    bench_crowd(&mut out);
    eprintln!("[4/5] POSHGNN recommend step, sparse vs dense kernels");
    bench_poshgnn_step(&mut out);
    eprintln!("[5/5] comparison runner, 1 thread vs all cores");
    bench_parallel_runner(&mut out);
    out.push_str("}\n");

    println!("{out}");
    let root = results_dir().parent().map(|p| p.to_path_buf()).unwrap_or_default();
    let path = root.join("BENCH_pr1.json");
    match std::fs::write(&path, &out) {
        Ok(()) => eprintln!("[written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
