//! Regenerates Table VI: sensitivity of POSHGNN to the user number `N`
//! (half of them MR participants), on the SMM-like dataset.
//!
//! Usage: `cargo run --release -p xr-eval --bin table6`

use poshgnn::{LossParams, PoshGnn, PoshGnnConfig};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::par::par_map_indexed;
use xr_eval::report::emit;
use xr_eval::runner::{build_contexts, pick_targets, run_method};

fn main() {
    let _obs = xr_obs::init_cli_env();
    let dataset = Dataset::generate(DatasetKind::Smm, 6);
    let ns = [10usize, 20, 50, 100, 200, 500];
    // Each N-cell is independent and deterministically seeded, so the sweep
    // parallelizes across AFTER_THREADS workers with identical output.
    let rows: Vec<(usize, xr_eval::MethodResult)> = par_map_indexed(ns.len(), |i| {
        let n = ns[i];
        // T = 50 keeps the N = 500 sweep tractable; the N-trend is unaffected
        let scenario_cfg =
            ScenarioConfig { n_participants: n, time_steps: 50, seed: 106, ..ScenarioConfig::default() };
        let test_scenario = dataset.sample_scenario(&scenario_cfg);
        let train_scenario = dataset.sample_scenario(&ScenarioConfig { seed: 206, ..scenario_cfg });
        let n_targets = if n >= 500 { 2 } else { 3 };
        let test_ctx = build_contexts(&test_scenario, &pick_targets(&test_scenario, n_targets, 7), 0.5);
        let train_ctx = build_contexts(&train_scenario, &pick_targets(&train_scenario, n_targets, 8), 0.5);
        let mut model = PoshGnn::new(PoshGnnConfig { loss: LossParams::default(), ..Default::default() });
        model.train(&train_ctx, if n >= 500 { 30 } else { 50 });
        (n, run_method(&mut model, &test_ctx))
    });

    let mut text = String::from("Table VI: sensitivity test on user number N (half MR)\n");
    text.push_str(&format!("{:<22}", "Metrics"));
    for (n, _) in &rows {
        text.push_str(&format!("{:>10}", format!("N = {n}")));
    }
    text.push('\n');
    #[allow(clippy::type_complexity)] // local row-formatter table
    let metric_rows: [(&str, fn(&xr_eval::MethodResult) -> String); 5] = [
        ("AFTER Utility ^", |r| format!("{:.1}", r.mean.after_utility)),
        ("Preference ^", |r| format!("{:.1}", r.mean.preference)),
        ("Social Presence ^", |r| format!("{:.1}", r.mean.social_presence)),
        ("View Occlusion v", |r| format!("{:.1}%", 100.0 * r.mean.view_occlusion_rate)),
        ("Running Time (ms) v", |r| format!("{:.2}", r.ms_per_step)),
    ];
    for (label, f) in metric_rows {
        text.push_str(&format!("{label:<22}"));
        for (_, r) in &rows {
            text.push_str(&format!("{:>10}", f(r)));
        }
        text.push('\n');
    }
    emit("table6.txt", &text);

    let mut csv =
        String::from("n,after_utility,preference,social_presence,view_occlusion_rate,ms_per_step\n");
    for (n, r) in &rows {
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            n,
            r.mean.after_utility,
            r.mean.preference,
            r.mean.social_presence,
            r.mean.view_occlusion_rate,
            r.ms_per_step
        ));
    }
    emit("table6.csv", &csv);
}
