//! Regenerates Table IV: POSHGNN vs. baselines on the Hubs-like dataset.
//!
//! Usage: `cargo run --release -p xr-eval --bin table4`

use xr_datasets::{Dataset, DatasetKind};
use xr_eval::report::emit;
use xr_eval::{run_comparison, ComparisonConfig};

fn main() {
    let _obs = xr_obs::init_cli_env();
    let dataset = Dataset::generate(DatasetKind::Hubs, 4);
    let cfg = ComparisonConfig::paper_defaults(dataset.default_scenario_config(104));
    let cmp = run_comparison(&dataset, &cfg);
    let mut text = cmp.render_table("Table IV: results on the Hubs-like dataset");
    text.push_str("\np-values (Welch) of POSHGNN vs baselines on per-target AFTER utility:\n");
    for (name, p) in cmp.p_values_vs_first() {
        text.push_str(&format!("  vs {name:<10} p = {p:.4}\n"));
    }
    emit("table4.txt", &text);
    emit("table4.csv", &cmp.to_csv());
}
