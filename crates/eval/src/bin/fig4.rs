//! Regenerates Fig. 4: per-method utility and (simulated) Likert feedback in
//! the 48-participant user study, for overall satisfaction, preference, and
//! social presence.
//!
//! Usage: `cargo run --release -p xr-eval --bin fig4`

use xr_eval::report::emit;
use xr_eval::{run_user_study, UserStudyConfig};

fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = ((value / max) * width as f64).round().max(0.0) as usize;
    format!("{}{}", "#".repeat(filled.min(width)), " ".repeat(width - filled.min(width)))
}

fn main() {
    let _obs = xr_obs::init_cli_env();
    let result = run_user_study(&UserStudyConfig::default());
    let mut text = String::from("Fig. 4: utility and user feedback in the (simulated) user study\n\n");

    #[allow(clippy::type_complexity)] // local row-formatter table
    let sections: [(&str, fn(&xr_eval::StudyOutcome) -> (f64, f64)); 3] = [
        ("Overall (AFTER utility / satisfaction)", |o| (o.utility_per_step, o.feedback_overall)),
        ("Preference (utility / customization feedback)", |o| (o.preference_per_step, o.feedback_preference)),
        ("Social presence (utility / company-of-friends feedback)", |o| {
            (o.social_presence_per_step, o.feedback_social)
        }),
    ];
    for (title, extract) in sections {
        text.push_str(&format!("== {title} ==\n"));
        let max_u = result.outcomes.iter().map(|o| extract(o).0).fold(0.0_f64, f64::max).max(1e-9);
        for o in &result.outcomes {
            let (u, f) = extract(o);
            text.push_str(&format!(
                "{:<10} utility {:6.3}/step |{}|   feedback {:.3}/5 |{}|\n",
                o.name,
                u,
                bar(u, max_u, 24),
                f,
                bar(f, 5.0, 24)
            ));
        }
        text.push('\n');
    }
    emit("fig4.txt", &text);

    let mut csv = String::from(
        "method,utility_per_step,preference_per_step,social_presence_per_step,feedback_overall,feedback_preference,feedback_social\n",
    );
    for o in &result.outcomes {
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            o.name,
            o.utility_per_step,
            o.preference_per_step,
            o.social_presence_per_step,
            o.feedback_overall,
            o.feedback_preference,
            o.feedback_social
        ));
    }
    emit("fig4.csv", &csv);
}
