//! Statistics used by the evaluation: descriptive moments, Pearson and
//! Spearman correlations (Table VIII), and Welch's t-test with exact
//! p-values via the regularized incomplete beta function (the significance
//! claims in §V-B).

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (0 for fewer than two samples).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson product-moment correlation; 0 when either input is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation inputs must align");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Fractional ranks with ties averaged (the standard treatment for
/// Spearman's ρ).
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap());
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Lentz's method, as in Numerical Recipes).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // even step
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)`.
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Two-sided p-value of Student's t with `df` degrees of freedom.
pub fn t_test_p_value(t: f64, df: f64) -> f64 {
    if df <= 0.0 {
        return 1.0;
    }
    let x = df / (df + t * t);
    incomplete_beta(df / 2.0, 0.5, x)
}

/// Result of Welch's unequal-variance t-test.
#[derive(Debug, Clone, Copy)]
pub struct WelchResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Welch's t-test comparing two independent samples.
pub fn welch_t_test(xs: &[f64], ys: &[f64]) -> WelchResult {
    let nx = xs.len() as f64;
    let ny = ys.len() as f64;
    if nx < 2.0 || ny < 2.0 {
        return WelchResult { t: 0.0, df: 0.0, p_value: 1.0 };
    }
    let vx = variance(xs) / nx;
    let vy = variance(ys) / ny;
    let se = (vx + vy).sqrt();
    if se == 0.0 {
        let t = if mean(xs) == mean(ys) { 0.0 } else { f64::INFINITY };
        return WelchResult { t, df: nx + ny - 2.0, p_value: if t == 0.0 { 1.0 } else { 0.0 } };
    }
    let t = (mean(xs) - mean(ys)) / se;
    let df = (vx + vy).powi(2) / (vx * vx / (nx - 1.0) + vy * vy / (ny - 1.0));
    WelchResult { t, df, p_value: t_test_p_value(t, df) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptive_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn pearson_of_linear_data_is_one() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[2.0; 10]), 0.0);
    }

    #[test]
    fn spearman_is_rank_invariant() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect(); // monotone
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(5.0) - (24.0_f64).ln()).abs() < 1e-10);
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        let x = 0.37;
        let lhs = incomplete_beta(2.5, 1.5, x);
        let rhs = 1.0 - incomplete_beta(1.5, 2.5, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
        // I_x(1,1) = x (uniform CDF)
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_test_p_values_match_known_quantiles() {
        // For df = 10, t = 2.228 is the 97.5th percentile → p ≈ 0.05
        let p = t_test_p_value(2.228, 10.0);
        assert!((p - 0.05).abs() < 2e-3, "p = {p}");
        // t = 0 → p = 1
        assert!((t_test_p_value(0.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn welch_detects_separated_samples() {
        let a: Vec<f64> = (0..20).map(|i| 10.0 + (i % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..20).map(|i| 5.0 + (i % 3) as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.t > 0.0);
    }

    #[test]
    fn welch_accepts_identical_samples() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&a, &a);
        assert!((r.t).abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }
}
