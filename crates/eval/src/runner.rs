//! Experiment orchestration: trains the learned methods, times every
//! recommender per step, evaluates AFTER utilities, and renders the paper's
//! result tables.

use std::time::Instant;

use poshgnn::recommender::AfterRecommender;
use poshgnn::{
    evaluate_sequence, PoshGnn, PoshGnnConfig, PoshVariant, StepView, TargetContext, UtilityBreakdown,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use xr_baselines::{
    ComurNetConfig, ComurNetRecommender, GraFrankConfig, GraFrankRecommender, MvAgcRecommender,
    NearestRecommender, RandomRecommender, RnnConfig, RnnKind, RnnRecommender,
};
use xr_datasets::{Dataset, Scenario, ScenarioConfig};

use crate::stats::welch_t_test;

/// Renders every surrounding user — the "Original" condition of the user
/// study (no adaptive display at all).
pub struct RenderAllRecommender;

impl AfterRecommender for RenderAllRecommender {
    fn name(&self) -> String {
        "Original".to_string()
    }

    fn begin_episode(&mut self, _view: &StepView<'_>) {}

    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
        (0..view.n()).map(|w| w != view.target()).collect()
    }
}

/// Wraps a recommender with an overridden delivery latency — used by the
/// `comurnet_latency` experiment to study how staleness degrades a per-step
/// combinatorial optimizer (the paper's practicality argument, swept).
pub struct DelayedRecommender<R> {
    inner: R,
    latency: usize,
}

impl<R: AfterRecommender> DelayedRecommender<R> {
    /// Wraps `inner`, forcing its decisions to land `latency` steps late.
    pub fn new(inner: R, latency: usize) -> Self {
        DelayedRecommender { inner, latency }
    }
}

impl<R: AfterRecommender> AfterRecommender for DelayedRecommender<R> {
    fn name(&self) -> String {
        format!("{} (lag {})", self.inner.name(), self.latency)
    }

    fn begin_episode(&mut self, view: &StepView<'_>) {
        self.inner.begin_episode(view);
    }

    fn recommend_step(&mut self, view: &StepView<'_>) -> Vec<bool> {
        self.inner.recommend_step(view)
    }

    fn latency_steps(&self) -> usize {
        self.latency
    }
}

/// Evaluation outcome of one method over a set of target users.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method display name.
    pub name: String,
    /// Metrics averaged over targets.
    pub mean: UtilityBreakdown,
    /// Per-target metrics (for significance tests).
    pub per_target: Vec<UtilityBreakdown>,
    /// Mean wall-clock milliseconds per recommendation step.
    pub ms_per_step: f64,
}

/// Runs one recommender over every target context, timing each step.
///
/// Methods with non-zero [`AfterRecommender::latency_steps`] deliver stale
/// decisions: the decision computed for step `t` is *applied* at
/// `t + latency`, and nothing is displayed before the first delivery — the
/// paper's practicality penalty (Fig. 2b) made concrete.
pub fn run_method(rec: &mut dyn AfterRecommender, contexts: &[TargetContext]) -> MethodResult {
    let name = rec.name();
    let _span = xr_obs::span!("xr_eval.run_method", method = name, targets = contexts.len());
    let cell_timer = xr_obs::start_timer();
    let mut per_target = Vec::with_capacity(contexts.len());
    let mut total_ms = 0.0;
    let mut total_steps = 0usize;
    let latency = rec.latency_steps();
    // per-step deadline accounting + windowed latency series, when a budget
    // is configured (AFTER_SLO_BUDGET_MS / --slo-budget-ms)
    let mut slo = xr_obs::SloTracker::from_env_labeled("xr_eval.step", &[("method", &name)]);
    for ctx in contexts {
        // the driver owns the full context; the method only ever sees the
        // causal per-tick views
        rec.begin_episode(&StepView::new(ctx, 0));
        let mut computed = Vec::with_capacity(ctx.t_max() + 1);
        for t in 0..=ctx.t_max() {
            let view = StepView::new(ctx, t);
            let start = Instant::now();
            let decision = rec.recommend_step(&view);
            let step_ms = start.elapsed().as_secs_f64() * 1e3;
            total_ms += step_ms;
            if let Some(slo) = &mut slo {
                // windows count recommend steps across episodes: a stream of
                // decisions is the serving unit, not one target's episode
                slo.record(total_steps as u64, step_ms);
            }
            // rolling per-method latency series, 8 steps per window
            xr_obs::series_observe(
                "xr_eval.step.ms",
                &[("method", name.as_str())],
                total_steps as u64 / 8,
                step_ms,
            );
            total_steps += 1;
            computed.push(decision);
        }
        let recs: Vec<Vec<bool>> = (0..=ctx.t_max())
            .map(|t| if t >= latency { computed[t - latency].clone() } else { vec![false; ctx.n] })
            .collect();
        per_target.push(evaluate_sequence(ctx, &recs));
    }
    let mean = UtilityBreakdown::mean(&per_target);
    let ms_per_step = total_ms / total_steps.max(1) as f64;
    // per-method telemetry: cell wall time as a histogram (cells repeat
    // across scenarios/seeds), objective values as gauges
    let labels = [("method", name.as_str())];
    xr_obs::observe_since("xr_eval.method.cell.ms", &labels, cell_timer);
    xr_obs::observe("xr_eval.method.step.ms", &labels, ms_per_step);
    xr_obs::gauge_set("xr_eval.method.after_utility", &labels, mean.after_utility);
    xr_obs::gauge_set("xr_eval.method.preference", &labels, mean.preference);
    xr_obs::gauge_set("xr_eval.method.social_presence", &labels, mean.social_presence);
    xr_obs::gauge_set("xr_eval.method.view_occlusion_rate", &labels, mean.view_occlusion_rate);
    MethodResult { name, mean, per_target, ms_per_step }
}

/// Configuration of a full method comparison (Tables II–IV).
#[derive(Debug, Clone, Copy)]
pub struct ComparisonConfig {
    /// Test-scenario parameters (dataset defaults unless overridden).
    pub scenario: ScenarioConfig,
    /// Seed of the disjoint training scenario (the 80/20 split stand-in).
    pub train_seed: u64,
    /// Social-presence weight `β`.
    pub beta: f64,
    /// Occlusion penalty weight `α` for the POSHGNN-loss-trained methods.
    pub alpha: f64,
    /// Number of evaluated target users.
    pub n_targets: usize,
    /// Training epochs for POSHGNN / TGCN / DCRNN.
    pub train_epochs: usize,
    /// Top-k budget for Random / Nearest / GraFrank.
    pub top_k: usize,
    /// Whether to include the (slow) COMURNet baseline.
    pub include_comurnet: bool,
}

impl ComparisonConfig {
    /// Paper-style defaults on top of a dataset's scenario config.
    pub fn paper_defaults(scenario: ScenarioConfig) -> Self {
        ComparisonConfig {
            scenario,
            train_seed: scenario.seed ^ 0x5EED,
            beta: 0.5,
            alpha: poshgnn::LossParams::default().alpha,
            n_targets: 4,
            train_epochs: 60,
            top_k: 10,
            include_comurnet: true,
        }
    }
}

/// A completed comparison on one dataset.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Dataset display name.
    pub dataset: String,
    /// One result per method, POSHGNN first.
    pub results: Vec<MethodResult>,
}

/// Deterministically samples target users for a scenario.
pub fn pick_targets(scenario: &Scenario, n_targets: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..scenario.n()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(n_targets.min(scenario.n()));
    idx
}

/// Builds target contexts for a scenario through one shared
/// [`xr_session::SceneEngine`] pass: the scene (distances, occlusion,
/// candidate masks) is maintained once per tick for all targets instead of
/// once per target.
pub fn build_contexts(scenario: &Scenario, targets: &[usize], beta: f64) -> Vec<TargetContext> {
    let requests: Vec<(usize, f64)> = targets.iter().map(|&t| (t, beta)).collect();
    TargetContext::batch(scenario, &requests)
}

/// The test/train scenarios and target contexts shared by every method cell
/// of a comparison. Built once, then borrowed read-only by all workers.
struct ComparisonInputs {
    test_scenario: Scenario,
    test_ctx: Vec<TargetContext>,
    train_ctx: Vec<TargetContext>,
}

impl ComparisonInputs {
    fn build(dataset: &Dataset, cfg: &ComparisonConfig) -> Self {
        let test_scenario = dataset.sample_scenario(&cfg.scenario);
        let train_scenario =
            dataset.sample_scenario(&ScenarioConfig { seed: cfg.train_seed, ..cfg.scenario });
        let targets = pick_targets(&test_scenario, cfg.n_targets, cfg.scenario.seed ^ 0x7A46);
        let train_targets = pick_targets(&train_scenario, cfg.n_targets, cfg.train_seed ^ 0x7A46);
        let test_ctx = build_contexts(&test_scenario, &targets, cfg.beta);
        let train_ctx = build_contexts(&train_scenario, &train_targets, cfg.beta);
        ComparisonInputs { test_scenario, test_ctx, train_ctx }
    }
}

/// Trains (where applicable) and evaluates comparison method `method`
/// (0 = POSHGNN … 7 = COMURNet). One independent parallel cell: all
/// randomness comes from fixed per-method seeds, never a shared RNG.
fn run_comparison_cell(method: usize, cfg: &ComparisonConfig, inp: &ComparisonInputs) -> MethodResult {
    let loss = poshgnn::LossParams { beta: cfg.beta, alpha: cfg.alpha };
    match method {
        0 => {
            let mut posh = PoshGnn::new(PoshGnnConfig { loss, ..Default::default() });
            posh.train(&inp.train_ctx, cfg.train_epochs);
            run_method(&mut posh, &inp.test_ctx)
        }
        1 => run_method(&mut RandomRecommender::new(cfg.top_k, 1234), &inp.test_ctx),
        2 => run_method(&mut NearestRecommender::new(cfg.top_k), &inp.test_ctx),
        3 => {
            // static learned baseline fit on the scenario's social structure
            let k_clusters = (inp.test_scenario.n() / 10).max(2);
            let mut mvagc = MvAgcRecommender::fit(&inp.test_scenario, k_clusters, 2, 77);
            run_method(&mut mvagc, &inp.test_ctx)
        }
        4 => {
            let mut grafrank = GraFrankRecommender::fit(
                &inp.test_scenario,
                GraFrankConfig { top_k: cfg.top_k, ..Default::default() },
            );
            run_method(&mut grafrank, &inp.test_ctx)
        }
        5 | 6 => {
            // recurrent baselines, trained with the POSHGNN loss
            let kind = if method == 5 { RnnKind::Dcrnn } else { RnnKind::Tgcn };
            let mut rnn = RnnRecommender::new(kind, RnnConfig { loss, ..Default::default() });
            rnn.train(&inp.train_ctx, cfg.train_epochs);
            run_method(&mut rnn, &inp.test_ctx)
        }
        7 => run_method(&mut ComurNetRecommender::new(ComurNetConfig::default()), &inp.test_ctx),
        _ => unreachable!("comparison has at most 8 methods"),
    }
}

/// Runs the full eight-method comparison on one dataset (the engine behind
/// Tables II, III, and IV).
///
/// Method cells run in parallel on [`crate::par::thread_count`] scoped
/// workers (override with `AFTER_THREADS`). Every cell is seeded
/// independently, so the resulting table is identical at any thread count —
/// only the wall-clock `ms_per_step` column varies run to run.
pub fn run_comparison(dataset: &Dataset, cfg: &ComparisonConfig) -> Comparison {
    let _span = xr_obs::span!("xr_eval.comparison", dataset = dataset.kind.name());
    let inputs = {
        let _build = xr_obs::span!("xr_eval.comparison.build_inputs");
        ComparisonInputs::build(dataset, cfg)
    };
    let n_methods = if cfg.include_comurnet { 8 } else { 7 };
    let results = crate::par::par_map_indexed(n_methods, |m| {
        let _cell = xr_obs::span!("xr_eval.comparison.cell", method = m);
        run_comparison_cell(m, cfg, &inputs)
    });
    Comparison { dataset: dataset.kind.name().to_string(), results }
}

/// Runs the Table V ablation: Full vs PDR+MIA vs PDR-only POSHGNN.
///
/// The three variants are independent cells and run in parallel, like
/// [`run_comparison`].
pub fn run_ablation(dataset: &Dataset, cfg: &ComparisonConfig) -> Comparison {
    let _span = xr_obs::span!("xr_eval.ablation", dataset = dataset.kind.name());
    let inputs = ComparisonInputs::build(dataset, cfg);
    let variants = [PoshVariant::Full, PoshVariant::PdrWithMia, PoshVariant::PdrOnly];
    let results = crate::par::par_map_indexed(variants.len(), |i| {
        let variant = variants[i];
        let _cell = xr_obs::span!("xr_eval.ablation.cell", variant = variant.name());
        let mut model = PoshGnn::new(PoshGnnConfig {
            variant,
            loss: poshgnn::LossParams { beta: cfg.beta, alpha: cfg.alpha },
            ..Default::default()
        });
        model.train(&inputs.train_ctx, cfg.train_epochs);
        let mut r = run_method(&mut model, &inputs.test_ctx);
        r.name = variant.name().to_string();
        r
    });
    Comparison { dataset: dataset.kind.name().to_string(), results }
}

impl Comparison {
    /// The result row for a method name, if present.
    pub fn get(&self, name: &str) -> Option<&MethodResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Welch-t p-values of the first method (POSHGNN) against each baseline
    /// on per-target AFTER utility.
    pub fn p_values_vs_first(&self) -> Vec<(String, f64)> {
        let first = &self.results[0];
        let xs: Vec<f64> = first.per_target.iter().map(|b| b.after_utility).collect();
        self.results[1..]
            .iter()
            .map(|r| {
                let ys: Vec<f64> = r.per_target.iter().map(|b| b.after_utility).collect();
                (r.name.clone(), welch_t_test(&xs, &ys).p_value)
            })
            .collect()
    }

    /// Renders the paper-style metric table as text.
    #[allow(clippy::type_complexity)] // local row-formatter table
    pub fn render_table(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{title}\n"));
        out.push_str(&format!("{:<22}", "Metrics"));
        for r in &self.results {
            out.push_str(&format!("{:>12}", truncate(&r.name, 12)));
        }
        out.push('\n');
        let rows: [(&str, Box<dyn Fn(&MethodResult) -> String>); 5] = [
            ("AFTER Utility ^", Box::new(|r| format!("{:.1}", r.mean.after_utility))),
            ("Preference ^", Box::new(|r| format!("{:.1}", r.mean.preference))),
            ("Social Presence ^", Box::new(|r| format!("{:.1}", r.mean.social_presence))),
            ("View Occlusion v", Box::new(|r| format!("{:.1}%", 100.0 * r.mean.view_occlusion_rate))),
            ("Running Time (ms) v", Box::new(|r| format!("{:.3}", r.ms_per_step))),
        ];
        for (label, f) in rows {
            out.push_str(&format!("{label:<22}"));
            for r in &self.results {
                out.push_str(&format!("{:>12}", f(r)));
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering (one row per method).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "dataset,method,after_utility,preference,social_presence,view_occlusion_rate,ms_per_step\n",
        );
        for r in &self.results {
            out.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                self.dataset,
                r.name,
                r.mean.after_utility,
                r.mean.preference,
                r.mean.social_presence,
                r.mean.view_occlusion_rate,
                r.ms_per_step
            ));
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        s.chars().take(max - 1).collect::<String>() + "…"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_datasets::DatasetKind;

    fn tiny_cfg(seed: u64) -> ComparisonConfig {
        ComparisonConfig {
            scenario: ScenarioConfig {
                n_participants: 12,
                vr_fraction: 0.5,
                time_steps: 6,
                room_side: 6.0,
                body_radius: 0.15,
                seed,
            },
            train_seed: seed + 1,
            beta: 0.5,
            alpha: 0.75,
            n_targets: 2,
            train_epochs: 4,
            top_k: 4,
            include_comurnet: false,
        }
    }

    #[test]
    fn run_method_times_and_evaluates() {
        let dataset = Dataset::generate(DatasetKind::Hubs, 1);
        let scenario = dataset.sample_scenario(&tiny_cfg(2).scenario);
        let ctxs = build_contexts(&scenario, &[0, 3], 0.5);
        let result = run_method(&mut RandomRecommender::new(3, 9), &ctxs);
        assert_eq!(result.name, "Random");
        assert_eq!(result.per_target.len(), 2);
        assert!(result.ms_per_step >= 0.0);
        assert!(result.mean.mean_recommended > 0.0);
    }

    #[test]
    fn comparison_produces_all_methods() {
        let dataset = Dataset::generate(DatasetKind::Hubs, 1);
        let cmp = run_comparison(&dataset, &tiny_cfg(3));
        let names: Vec<&str> = cmp.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["POSHGNN", "Random", "Nearest", "MvAGC", "GraFrank", "DCRNN", "TGCN"]);
        // every method produced finite metrics
        for r in &cmp.results {
            assert!(r.mean.after_utility.is_finite(), "{} broke", r.name);
        }
        let table = cmp.render_table("test table");
        assert!(table.contains("POSHGNN") && table.contains("View Occlusion"));
        let csv = cmp.to_csv();
        assert_eq!(csv.lines().count(), 1 + cmp.results.len());
    }

    #[test]
    fn ablation_produces_three_variants() {
        let dataset = Dataset::generate(DatasetKind::Hubs, 1);
        let cmp = run_ablation(&dataset, &tiny_cfg(4));
        let names: Vec<&str> = cmp.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["Full", "PDR w/ MIA", "Only PDR"]);
    }

    #[test]
    fn comparison_rows_identical_at_any_thread_count() {
        let dataset = Dataset::generate(DatasetKind::Hubs, 1);
        let cfg = tiny_cfg(8);
        // 4 threads regardless of host core count, then strictly sequential
        std::env::set_var("AFTER_THREADS", "4");
        let auto = run_comparison(&dataset, &cfg);
        std::env::set_var("AFTER_THREADS", "1");
        let single = run_comparison(&dataset, &cfg);
        std::env::remove_var("AFTER_THREADS");

        assert_eq!(auto.results.len(), single.results.len());
        for (a, s) in auto.results.iter().zip(&single.results) {
            // every table field must match bit-for-bit except the wall-clock
            // ms_per_step column
            assert_eq!(a.name, s.name);
            assert_eq!(a.mean.after_utility.to_bits(), s.mean.after_utility.to_bits(), "{}", a.name);
            assert_eq!(a.mean.preference.to_bits(), s.mean.preference.to_bits(), "{}", a.name);
            assert_eq!(a.mean.social_presence.to_bits(), s.mean.social_presence.to_bits(), "{}", a.name);
            assert_eq!(
                a.mean.view_occlusion_rate.to_bits(),
                s.mean.view_occlusion_rate.to_bits(),
                "{}",
                a.name
            );
            assert_eq!(a.per_target.len(), s.per_target.len());
            for (pa, ps) in a.per_target.iter().zip(&s.per_target) {
                assert_eq!(pa.after_utility.to_bits(), ps.after_utility.to_bits(), "{}", a.name);
            }
        }
    }

    #[test]
    fn metrics_snapshot_identical_at_any_thread_count() {
        let dataset = Dataset::generate(DatasetKind::Hubs, 1);
        let cfg = tiny_cfg(12);
        let snapshot_with_threads = |threads: &str| {
            std::env::set_var("AFTER_THREADS", threads);
            let ctx = xr_obs::ObsCtx::new(true, false);
            {
                let _guard = ctx.install();
                run_comparison(&dataset, &cfg);
            }
            std::env::remove_var("AFTER_THREADS");
            ctx.registry.snapshot()
        };
        let single = snapshot_with_threads("1");
        let multi = snapshot_with_threads("4");
        // event/work counters merge exactly across workers
        assert_eq!(single.counters, multi.counters);
        // gauges hold deterministic objective values, so they match bit-for-bit
        assert_eq!(single.gauges.len(), multi.gauges.len());
        for ((ka, va), (kb, vb)) in single.gauges.iter().zip(&multi.gauges) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits(), "{}", ka.display());
        }
        // histogram *values* are wall-clock timings, but the set of series and
        // the observation counts are workload-determined
        assert_eq!(single.histograms.len(), multi.histograms.len());
        for ((ka, ha), (kb, hb)) in single.histograms.iter().zip(&multi.histograms) {
            assert_eq!(ka, kb);
            assert_eq!(ha.count, hb.count, "{}", ka.display());
        }
    }

    #[test]
    fn windowed_series_identical_at_one_vs_eight_workers() {
        // Every cell records values derived only from its index, so the merged
        // windowed snapshot must be *bit-identical* regardless of how the work
        // interleaves across workers. Gauges within a window all carry the same
        // value (last-write-wins is then order-free), and highest-window-wins
        // eviction is exercised by spanning more windows than the ring holds.
        let series_with_workers = |workers: usize| {
            let ctx = xr_obs::ObsCtx::new(true, false);
            {
                let _guard = ctx.install();
                crate::par::par_map_indexed_with(workers, 96, |i| {
                    let window = (i / 8) as u64;
                    xr_obs::series_observe(
                        "det.step.ms",
                        &[("method", if i % 2 == 0 { "even" } else { "odd" })],
                        window,
                        (i * i) as f64 * 0.25,
                    );
                    xr_obs::series_counter_add("det.cells", &[], window, 1);
                    xr_obs::series_gauge_set("det.level", &[], window, window as f64 * 3.5);
                });
            }
            ctx.series.snapshot()
        };
        let single = series_with_workers(1);
        let multi = series_with_workers(8);
        assert!(!single.series.is_empty());
        assert_eq!(single, multi, "windowed merge must not depend on thread count");
        // the counter series saw every cell exactly once across its windows
        let cells = &multi.series("det.cells").expect("counter series present").windows;
        let total: u64 = cells
            .iter()
            .map(|(_, cell)| match cell {
                xr_obs::timeseries::WindowSnapshot::Counter(n) => *n,
                other => panic!("unexpected cell {other:?}"),
            })
            .sum();
        assert_eq!(total, 96);
    }

    #[test]
    fn windowed_series_from_comparison_identical_at_any_thread_count() {
        // End-to-end flavor of the determinism check: the eval runner's own
        // per-step latency series has wall-clock *values*, but the set of
        // series, their windows, and their observation counts are fixed by the
        // workload alone.
        let dataset = Dataset::generate(DatasetKind::Hubs, 1);
        let cfg = tiny_cfg(12);
        let series_with_threads = |threads: &str| {
            std::env::set_var("AFTER_THREADS", threads);
            let ctx = xr_obs::ObsCtx::new(true, false);
            {
                let _guard = ctx.install();
                run_comparison(&dataset, &cfg);
            }
            std::env::remove_var("AFTER_THREADS");
            ctx.series.snapshot()
        };
        let single = series_with_threads("1");
        let multi = series_with_threads("8");
        assert!(
            single.series.iter().any(|s| s.key.name == "xr_eval.step.ms"),
            "runner must export its step-latency series"
        );
        assert_eq!(single.series.len(), multi.series.len());
        for (a, b) in single.series.iter().zip(&multi.series) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.windows.len(), b.windows.len(), "{}", a.key.display());
            for ((wa, ca), (wb, cb)) in a.windows.iter().zip(&b.windows) {
                assert_eq!(wa, wb, "{}", a.key.display());
                let count = |v: &xr_obs::timeseries::WindowSnapshot| match v {
                    xr_obs::timeseries::WindowSnapshot::Hist(h) => h.count,
                    xr_obs::timeseries::WindowSnapshot::Counter(n) => *n,
                    xr_obs::timeseries::WindowSnapshot::Gauge(_) => 0,
                };
                assert_eq!(count(ca), count(cb), "{}", a.key.display());
            }
        }
    }

    #[test]
    fn p_values_are_probabilities() {
        let dataset = Dataset::generate(DatasetKind::Hubs, 1);
        let cmp = run_comparison(&dataset, &tiny_cfg(5));
        for (name, p) in cmp.p_values_vs_first() {
            assert!((0.0..=1.0).contains(&p), "{name}: p = {p}");
        }
    }

    #[test]
    fn render_all_displays_everyone() {
        let dataset = Dataset::generate(DatasetKind::Hubs, 1);
        let scenario = dataset.sample_scenario(&tiny_cfg(6).scenario);
        let ctx = TargetContext::new(&scenario, 0, 0.5);
        let mut rec = RenderAllRecommender;
        let d = rec.recommend_step(&StepView::new(&ctx, 0));
        assert_eq!(d.iter().filter(|&&b| b).count(), scenario.n() - 1);
    }

    #[test]
    fn pick_targets_is_deterministic_and_distinct() {
        let dataset = Dataset::generate(DatasetKind::Hubs, 1);
        let scenario = dataset.sample_scenario(&tiny_cfg(7).scenario);
        let a = pick_targets(&scenario, 5, 9);
        let b = pick_targets(&scenario, 5, 9);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }
}
