//! User-study simulator (paper §V-C, Fig. 4 and Table VIII).
//!
//! The original study puts 48 human participants into an XR conferencing
//! prototype (iPhone MR / Quest 2 VR) and records 5-point Likert
//! satisfaction for five methods. Humans and headsets are out of reach for a
//! library reproduction, so we simulate the study's *response model*: the
//! paper itself validates (Table VIII) that satisfaction is strongly
//! monotone in the delivered utility, so synthetic participants rate each
//! method with a noisy, saturating function of the per-step utility they
//! received. The simulator regenerates both the Fig. 4 bar structure
//! (utility + feedback per method, for overall / preference / social
//! presence) and the Table VIII correlation analysis.

use poshgnn::recommender::AfterRecommender;
use poshgnn::{PoshGnn, PoshGnnConfig, TargetContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_tensor::init::normal;

use crate::runner::{build_contexts, run_method, MethodResult, RenderAllRecommender};
use crate::stats::{mean, pearson, spearman};
use xr_baselines::{
    ComurNetConfig, ComurNetRecommender, GraFrankConfig, GraFrankRecommender, MvAgcRecommender,
};

/// Configuration of the simulated study.
#[derive(Debug, Clone, Copy)]
pub struct UserStudyConfig {
    /// Number of participants (the paper recruits 48).
    pub participants: usize,
    /// Episode length per session.
    pub time_steps: usize,
    /// Training epochs for POSHGNN before the study.
    pub train_epochs: usize,
    /// Likert noise standard deviation.
    pub noise_std: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for UserStudyConfig {
    fn default() -> Self {
        UserStudyConfig { participants: 48, time_steps: 40, train_epochs: 15, noise_std: 0.25, seed: 2024 }
    }
}

/// Per-method outcome of the study.
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// Method name.
    pub name: String,
    /// Mean per-step AFTER utility across participants.
    pub utility_per_step: f64,
    /// Mean per-step preference utility.
    pub preference_per_step: f64,
    /// Mean per-step social-presence utility.
    pub social_presence_per_step: f64,
    /// Mean Likert feedback on overall satisfaction (1–5).
    pub feedback_overall: f64,
    /// Mean Likert feedback on viewport customization (1–5).
    pub feedback_preference: f64,
    /// Mean Likert feedback on the company of friends (1–5).
    pub feedback_social: f64,
}

/// Full study result.
#[derive(Debug, Clone)]
pub struct UserStudyResult {
    /// One outcome per method.
    pub outcomes: Vec<StudyOutcome>,
    /// Flattened (utility, feedback) pairs across participants × methods,
    /// for the Table VIII correlation analysis.
    pub samples_overall: Vec<(f64, f64)>,
    /// Preference samples.
    pub samples_preference: Vec<(f64, f64)>,
    /// Social-presence samples.
    pub samples_social: Vec<(f64, f64)>,
}

/// The Table VIII correlations.
#[derive(Debug, Clone, Copy)]
pub struct CorrelationTable {
    pub pearson_preference: f64,
    pub pearson_social: f64,
    pub pearson_after: f64,
    pub spearman_preference: f64,
    pub spearman_social: f64,
    pub spearman_after: f64,
}

impl UserStudyResult {
    /// Computes the Table VIII correlations between utilities and feedback.
    pub fn correlations(&self) -> CorrelationTable {
        let split = |pairs: &[(f64, f64)]| -> (Vec<f64>, Vec<f64>) {
            (pairs.iter().map(|p| p.0).collect(), pairs.iter().map(|p| p.1).collect())
        };
        let (up, fp) = split(&self.samples_preference);
        let (us, fs) = split(&self.samples_social);
        let (ua, fa) = split(&self.samples_overall);
        CorrelationTable {
            pearson_preference: pearson(&up, &fp),
            pearson_social: pearson(&us, &fs),
            pearson_after: pearson(&ua, &fa),
            spearman_preference: spearman(&up, &fp),
            spearman_social: spearman(&us, &fs),
            spearman_after: spearman(&ua, &fa),
        }
    }
}

/// Saturating utility → mean-Likert response curve: 1 + 4·u/(u + c).
fn likert_mean(utility_per_step: f64, scale: f64) -> f64 {
    1.0 + 4.0 * utility_per_step / (utility_per_step + scale)
}

/// One noisy Likert rating clamped to the 1–5 scale.
fn likert_sample(utility_per_step: f64, scale: f64, noise_std: f64, rng: &mut StdRng) -> f64 {
    (likert_mean(utility_per_step, scale) + normal(rng, 0.0, noise_std)).clamp(1.0, 5.0)
}

/// Runs the simulated user study.
pub fn run_user_study(config: &UserStudyConfig) -> UserStudyResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dataset = Dataset::generate(DatasetKind::Hubs, config.seed ^ 0xCAFE);

    // One shared conferencing room whose participants are the study subjects.
    let scenario_cfg = ScenarioConfig {
        n_participants: config.participants,
        vr_fraction: 0.5,
        time_steps: config.time_steps,
        room_side: 8.0,
        body_radius: 0.15,
        seed: config.seed,
    };
    let scenario = dataset.sample_scenario(&scenario_cfg);
    let train_scenario =
        dataset.sample_scenario(&ScenarioConfig { seed: config.seed ^ 0x5EED, ..scenario_cfg });

    // Questionnaire-derived β per participant. Every participant is a
    // target in the same room, so the contexts are built through one shared
    // scene-engine pass instead of N independent precomputes.
    let requests: Vec<(usize, f64)> =
        (0..config.participants).map(|i| (i, rng.gen_range(0.3..0.7))).collect();
    let contexts: Vec<TargetContext> = TargetContext::batch(&scenario, &requests);

    // Train POSHGNN once on the training room.
    let train_targets: Vec<usize> = (0..4).collect();
    let train_ctx = build_contexts(&train_scenario, &train_targets, 0.5);
    let mut posh = PoshGnn::new(PoshGnnConfig::default());
    posh.train(&train_ctx, config.train_epochs);

    let mut mvagc = MvAgcRecommender::fit(&scenario, (config.participants / 8).max(2), 2, 5);
    let mut grafrank = GraFrankRecommender::fit(&scenario, GraFrankConfig::default());
    let mut comur = ComurNetRecommender::new(ComurNetConfig { rollouts: 10, ..Default::default() });
    let mut original = RenderAllRecommender;

    let steps = (config.time_steps + 1) as f64;
    let mut outcomes = Vec::new();
    let mut samples_overall = Vec::new();
    let mut samples_preference = Vec::new();
    let mut samples_social = Vec::new();

    let mut methods: Vec<&mut dyn AfterRecommender> =
        vec![&mut posh, &mut grafrank, &mut mvagc, &mut comur, &mut original];
    for method in methods.iter_mut() {
        let result: MethodResult = run_method(*method, &contexts);
        let mut ratings_overall = Vec::new();
        let mut ratings_pref = Vec::new();
        let mut ratings_social = Vec::new();
        for b in &result.per_target {
            let u_step = b.after_utility / steps;
            let p_step = b.preference / steps;
            let s_step = b.social_presence / steps;
            let ro = likert_sample(u_step, 2.5, config.noise_std, &mut rng);
            let rp = likert_sample(p_step, 2.5, config.noise_std, &mut rng);
            let rs = likert_sample(s_step, 2.5, config.noise_std, &mut rng);
            samples_overall.push((u_step, ro));
            samples_preference.push((p_step, rp));
            samples_social.push((s_step, rs));
            ratings_overall.push(ro);
            ratings_pref.push(rp);
            ratings_social.push(rs);
        }
        outcomes.push(StudyOutcome {
            name: result.name.clone(),
            utility_per_step: mean(
                &result.per_target.iter().map(|b| b.after_utility / steps).collect::<Vec<_>>(),
            ),
            preference_per_step: mean(
                &result.per_target.iter().map(|b| b.preference / steps).collect::<Vec<_>>(),
            ),
            social_presence_per_step: mean(
                &result.per_target.iter().map(|b| b.social_presence / steps).collect::<Vec<_>>(),
            ),
            feedback_overall: mean(&ratings_overall),
            feedback_preference: mean(&ratings_pref),
            feedback_social: mean(&ratings_social),
        });
    }

    UserStudyResult { outcomes, samples_overall, samples_preference, samples_social }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> UserStudyConfig {
        UserStudyConfig { participants: 8, time_steps: 6, train_epochs: 3, ..Default::default() }
    }

    #[test]
    fn likert_curve_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 0..20 {
            let u = i as f64 * 0.2;
            let l = likert_mean(u, 0.8);
            assert!(l >= prev, "non-monotone at {u}");
            assert!((1.0..=5.0).contains(&l));
            prev = l;
        }
        assert_eq!(likert_mean(0.0, 0.8), 1.0);
    }

    #[test]
    fn study_produces_five_methods() {
        let result = run_user_study(&tiny());
        let names: Vec<&str> = result.outcomes.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["POSHGNN", "GraFrank", "MvAGC", "COMURNet", "Original"]);
        assert_eq!(result.samples_overall.len(), 5 * 8);
        for o in &result.outcomes {
            assert!((1.0..=5.0).contains(&o.feedback_overall), "{:?}", o);
            assert!(o.utility_per_step.is_finite());
        }
    }

    #[test]
    fn feedback_correlates_with_utility() {
        let result = run_user_study(&UserStudyConfig {
            participants: 12,
            time_steps: 8,
            train_epochs: 3,
            ..Default::default()
        });
        let corr = result.correlations();
        assert!(corr.pearson_after > 0.5, "Pearson too low: {}", corr.pearson_after);
        assert!(corr.spearman_after > 0.4, "Spearman too low: {}", corr.spearman_after);
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_user_study(&tiny());
        let b = run_user_study(&tiny());
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.feedback_overall, y.feedback_overall);
            assert_eq!(x.utility_per_step, y.utility_per_step);
        }
    }
}
