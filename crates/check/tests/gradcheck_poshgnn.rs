//! Full-model gradient verification: every POSHGNN parameter block, through
//! the complete Def. 7 episode loss (BPTT across the preservation gate),
//! must agree with central finite differences to < 1e-4 relative error.

use poshgnn::{PoshGnn, PoshGnnConfig, PoshVariant, TargetContext};
use xr_check::gradcheck::{check_poshgnn, GradCheckConfig};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};

/// The paper's per-block acceptance bound for the episode loss.
const BLOCK_TOL: f64 = 1e-4;

fn small_ctx(dataset_seed: u64, scenario_seed: u64) -> TargetContext {
    let dataset = Dataset::generate(DatasetKind::Hubs, dataset_seed);
    let scenario = dataset.sample_scenario(&ScenarioConfig {
        n_participants: 10,
        vr_fraction: 0.5,
        time_steps: 3,
        room_side: 6.0,
        body_radius: 0.2,
        seed: scenario_seed,
    });
    TargetContext::new(&scenario, 0, 0.5)
}

fn check_variant(variant: PoshVariant, dense_kernels: bool) {
    let ctx = small_ctx(2, 5);
    let mut model = PoshGnn::new(PoshGnnConfig { variant, dense_kernels, ..Default::default() });
    let report = check_poshgnn(&mut model, &ctx, &GradCheckConfig::default());
    // all five GCN layers × (w_self, w_neigh, bias)
    assert_eq!(report.blocks.len(), 15, "unexpected block count:\n{}", report.render_table());
    for prefix in ["pdr.0", "pdr.1", "lwp.0", "lwp.1", "lwp.2"] {
        assert!(
            report.blocks.iter().any(|b| b.block.starts_with(prefix)),
            "no blocks for {prefix}:\n{}",
            report.render_table()
        );
    }
    report.assert_within(BLOCK_TOL);
}

#[test]
fn full_variant_gradients_match_finite_differences() {
    check_variant(PoshVariant::Full, false);
}

#[test]
fn full_variant_gradients_match_on_the_dense_kernel_path() {
    check_variant(PoshVariant::Full, true);
}

#[test]
fn pdr_with_mia_variant_gradients_match_finite_differences() {
    check_variant(PoshVariant::PdrWithMia, false);
}

#[test]
fn pdr_only_variant_gradients_match_finite_differences() {
    check_variant(PoshVariant::PdrOnly, false);
}

#[test]
fn gradcheck_restores_parameters_exactly() {
    let ctx = small_ctx(3, 7);
    let mut model = PoshGnn::new(PoshGnnConfig::default());
    let before = model.export_params();
    check_poshgnn(&mut model, &ctx, &GradCheckConfig::default());
    let after = model.export_params();
    let identical = before.iter().zip(&after).all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "finite-difference perturbation leaked into the parameters");
}

#[test]
fn gradients_are_nonzero_where_the_variant_uses_the_module() {
    // the Full variant trains both GNNs: each block must receive signal
    let ctx = small_ctx(4, 9);
    let mut model = PoshGnn::new(PoshGnnConfig::default());
    let report = check_poshgnn(&mut model, &ctx, &GradCheckConfig::default());
    let live = report.blocks.iter().filter(|b| b.analytic != 0.0 || b.numeric != 0.0).count();
    assert!(live >= 10, "suspiciously dead gradients:\n{}", report.render_table());
}
