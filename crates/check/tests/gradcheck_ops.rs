//! Op-level gradient checks — the property suite promoted from
//! `crates/tensor/tests/gradcheck.rs`, now driven through the
//! `xr_check::gradcheck` library API, plus the two checks PR 1 left open:
//! the tape SpMM op and the blocked matmul backward.

use std::rc::Rc;

use proptest::prelude::*;
use xr_check::gradcheck::{check_single, GradCheckConfig};
use xr_tensor::{CsrAdj, Matrix};

fn cfg() -> GradCheckConfig {
    GradCheckConfig::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grad_of_sigmoid_weighted_sum(vals in proptest::collection::vec(-3.0_f64..3.0, 6)) {
        check_single(&vals, 2, 3, &cfg(), |tape, w| {
            let c = tape.constant(Matrix::from_fn(2, 3, |r, c| (r + c) as f64 * 0.5 + 0.1));
            (w.sigmoid() * c).sum()
        })
        .assert_within(1e-5);
    }

    #[test]
    fn grad_of_tanh_chain(vals in proptest::collection::vec(-2.0_f64..2.0, 4)) {
        check_single(&vals, 2, 2, &cfg(), |tape, w| {
            let a = tape.constant(Matrix::from_fn(2, 2, |r, c| 1.0 + (r * 2 + c) as f64));
            a.matmul(w).tanh().sum()
        })
        .assert_within(1e-5);
    }

    #[test]
    fn grad_of_quadratic_form(vals in proptest::collection::vec(-2.0_f64..2.0, 3)) {
        check_single(&vals, 3, 1, &cfg(), |tape, r| {
            // symmetric adjacency-like constant
            let a = tape.constant(Matrix::from_fn(3, 3, |i, j| if i == j { 0.0 } else { 1.0 }));
            r.t().matmul(a).matmul(r).sum()
        })
        .assert_within(1e-5);
    }

    #[test]
    fn grad_of_gate_expression(vals in proptest::collection::vec(0.05_f64..0.95, 4)) {
        // Mimics the POSHGNN preservation gate: (1-σ)⊗r̃ + σ⊗r_prev.
        check_single(&vals, 4, 1, &cfg(), |tape, sigma| {
            let r_tilde = tape.constant(Matrix::from_fn(4, 1, |r, _| 0.2 + 0.1 * r as f64));
            let r_prev = tape.constant(Matrix::from_fn(4, 1, |r, _| 0.9 - 0.15 * r as f64));
            let gated = sigma.sigmoid().one_minus() * r_tilde + sigma.sigmoid() * r_prev;
            let weight = tape.constant(Matrix::from_fn(4, 1, |r, _| 1.0 + r as f64));
            (gated * weight).sum()
        })
        .assert_within(1e-5);
    }

    #[test]
    fn grad_of_mean_relu(vals in proptest::collection::vec(-3.0_f64..3.0, 6)) {
        // Values away from the ReLU kink (finite differences are invalid at 0).
        let shifted: Vec<f64> = vals.iter().map(|v| if v.abs() < 0.1 { v + 0.2 } else { *v }).collect();
        check_single(&shifted, 3, 2, &cfg(), |tape, w| {
            let m = tape.constant(Matrix::from_fn(3, 2, |r, c| 0.3 * (r as f64) - 0.7 * c as f64 + 0.5));
            (w.relu() * m).mean()
        })
        .assert_within(1e-5);
    }

    #[test]
    fn grad_through_concat(vals in proptest::collection::vec(-1.0_f64..1.0, 4)) {
        check_single(&vals, 2, 2, &cfg(), |tape, w| {
            let other = tape.constant(Matrix::ones(2, 3));
            let cat = tape.concat_cols(&[w, other]);
            let mix = tape.constant(Matrix::from_fn(2, 5, |r, c| (r + 1) as f64 * 0.2 + c as f64 * 0.1));
            (cat * mix).sum()
        })
        .assert_within(1e-5);
    }

    #[test]
    fn grad_through_broadcast_bias(vals in proptest::collection::vec(-1.0_f64..1.0, 3)) {
        check_single(&vals, 1, 3, &cfg(), |tape, b| {
            let x = tape.constant(Matrix::from_fn(4, 3, |r, c| (r as f64) * 0.5 - c as f64 * 0.25));
            x.add_row_broadcast(b).sigmoid().sum()
        })
        .assert_within(1e-5);
    }

    #[test]
    fn grad_through_tape_spmm(vals in proptest::collection::vec(-1.5_f64..1.5, 10)) {
        // Sparse aggregation · dense parameter — the native tape SpMM op
        // whose backward is the lazily cached CSR transpose · gradient.
        let adj = Rc::new(CsrAdj::from_entries(
            5,
            5,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 3, 0.5), (2, 2, 2.0), (3, 1, 0.5), (4, 0, 1.5), (4, 4, 0.25)],
        ));
        check_single(&vals, 5, 2, &cfg(), move |tape, w| {
            let agg = tape.sparse(adj.clone());
            let weight = tape.constant(Matrix::from_fn(5, 2, |r, c| 0.2 * (r + 1) as f64 - 0.3 * c as f64));
            (agg.matmul(w).sigmoid() * weight).sum()
        })
        .assert_within(1e-5);
    }

    #[test]
    fn grad_of_fused_gate_blend(vals in proptest::collection::vec(-2.0_f64..2.0, 4)) {
        // The single-node preservation gate m⊙((1−σ)⊙r̃ + σ⊙r_prev), with the
        // checked variable feeding all three differentiable inputs at once so
        // every backward arm (σ, a, b) and the in-slot accumulation are hit.
        check_single(&vals, 4, 1, &cfg(), |tape, w| {
            let mask = tape.constant(Matrix::from_fn(4, 1, |r, _| if r == 2 { 0.0 } else { 1.0 }));
            let gated = mask.gate_blend(w.sigmoid(), w.tanh(), w);
            let weight = tape.constant(Matrix::from_fn(4, 1, |r, _| 1.0 + r as f64));
            (gated * weight).sum()
        })
        .assert_within(1e-5);
    }

    #[test]
    fn grad_of_fused_dot_scale(vals in proptest::collection::vec(-1.5_f64..1.5, 5)) {
        // (a ⊙ b)·k as one DotScale node, both operands live.
        check_single(&vals, 5, 1, &cfg(), |_tape, r| r.dot_scale(r.sigmoid(), -0.5)).assert_within(1e-5);
    }

    #[test]
    fn grad_of_fused_dot3_scale(vals in proptest::collection::vec(-1.5_f64..1.5, 4)) {
        // (a ⊙ b ⊙ c)·k as one Dot3Scale node, all three operands live.
        check_single(&vals, 4, 1, &cfg(), |_tape, r| r.dot3_scale(r.sigmoid(), r.tanh(), -0.7))
            .assert_within(1e-5);
    }

    #[test]
    fn grad_of_fused_quadratic_penalty(vals in proptest::collection::vec(-1.0_f64..1.0, 4)) {
        // α·rᵀ(A·r) collapsed into a single MatDotScale node over the
        // transpose and SpMM — the fused form of the Def. 7 occlusion term.
        let adj = Rc::new(CsrAdj::from_entries(
            4,
            4,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0), (3, 0, 0.5), (0, 3, 0.5)],
        ));
        check_single(&vals, 4, 1, &cfg(), move |tape, r| {
            let a = tape.sparse(adj.clone());
            r.t().mat_dot_scale(a.matmul(r), 0.4)
        })
        .assert_within(1e-5);
    }

    #[test]
    fn grad_through_sparse_quadratic_penalty(vals in proptest::collection::vec(-1.0_f64..1.0, 4)) {
        // rᵀ·(A·r): the sparse occlusion-penalty path of the Def. 7 loss.
        let adj = Rc::new(CsrAdj::from_entries(
            4,
            4,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0), (3, 0, 0.5), (0, 3, 0.5)],
        ));
        check_single(&vals, 4, 1, &cfg(), move |tape, r| {
            let a = tape.sparse(adj.clone());
            r.t().matmul(a.matmul(r)).sum()
        })
        .assert_within(1e-5);
    }
}

#[test]
fn grad_through_the_packed_matmul_backward() {
    // A 4096×128 · 128×1 product sits at the flop dispatch threshold with
    // k ≥ MATMUL_PACK_MIN_K, so the packed kernel (not the chunked
    // fall-through) is what finite differences validate here — for the
    // backward too, whose AᵀB product is 128×4096 · 4096×1.
    let (m, k) = (4096_usize, 128_usize);
    assert!(
        m * k >= Matrix::MATMUL_DISPATCH_THRESHOLD && k >= Matrix::MATMUL_PACK_MIN_K,
        "operands must engage the packed kernel"
    );
    let x_m = Matrix::from_fn(m, k, |r, c| 0.05 * ((r * 7 + c * 3) % 11) as f64 - 0.2);
    let w_v = Matrix::from_fn(m, 1, |r, _| 0.01 * (r % 5) as f64 + 0.02);
    let vals: Vec<f64> = (0..k).map(|i| ((i * 2654435761 % 1000) as f64 / 500.0) - 1.0).collect();
    check_single(&vals, k, 1, &cfg(), move |tape, w| {
        let x = tape.constant(x_m.clone());
        let weight = tape.constant(w_v.clone());
        (x.matmul(w) * weight).sum()
    })
    .assert_within(1e-5);
}
