//! Golden replay: a seeded end-to-end run (dataset → ORCA → train →
//! recommend → evaluate) snapshotted byte-for-byte against a checked-in
//! golden file. Regenerate with `UPDATE_GOLDEN=1 cargo test -p xr_check`.

use xr_check::golden::{
    assert_matches_golden, replay, with_incremental, with_streaming, with_threads, ReplayConfig,
};

#[test]
fn small_replay_matches_the_checked_in_golden_file() {
    let snapshot = with_threads(1, || replay(&ReplayConfig::small()));
    assert_matches_golden("replay_small.txt", &snapshot);
}

#[test]
fn replay_is_byte_identical_across_thread_counts() {
    let serial = with_threads(1, || replay(&ReplayConfig::small()));
    let parallel = with_threads(8, || replay(&ReplayConfig::small()));
    assert_eq!(serial, parallel, "replay diverges between AFTER_THREADS=1 and AFTER_THREADS=8");
}

#[test]
fn replay_is_byte_identical_across_streaming_modes() {
    // The golden file is recorded under the default (streaming) context
    // builder; the legacy per-target precompute must reproduce it exactly.
    let streaming = with_streaming(true, || replay(&ReplayConfig::small()));
    let legacy = with_streaming(false, || replay(&ReplayConfig::small()));
    assert_eq!(streaming, legacy, "replay diverges between AFTER_STREAMING=1 and AFTER_STREAMING=0");
}

#[test]
fn replay_is_byte_identical_across_incremental_modes() {
    // The golden file was recorded before incremental maintenance existed
    // and must stay untouched: the O(Δ) path (delta distance rows, warm
    // sweep candidates, MIA edge-deltas — the default) and the from-scratch
    // oracle must reproduce it byte for byte.
    let incremental = with_incremental(true, || replay(&ReplayConfig::small()));
    let scratch = with_incremental(false, || replay(&ReplayConfig::small()));
    assert_eq!(incremental, scratch, "replay diverges between AFTER_INCREMENTAL=1 and AFTER_INCREMENTAL=0");
    assert_matches_golden("replay_small.txt", &incremental);
    assert_matches_golden("replay_small.txt", &scratch);
}
