//! The workspace's equivalence claims, enforced by the differential oracle:
//! 256 proptest-generated scenarios per kernel pair, plus the sparse/dense
//! POSHGNN recommender pair on full generated episodes.

use xr_check::diff::{
    assert_no_divergence, CachedVsFreshMia, IncrementalVsFromScratch, MatmulNaiveVsBlocked,
    MultiRoomVsSequential, OrcaGridVsBrute, PooledVsFreshTape, PrunedVsFull, SerialVsParallelRunner,
    ServeF32VsF64, SparseVsDensePoshGnn, SpmmVsDense, StreamingVsPrecomputed,
};

/// ≥ 256 cases per kernel pair (the acceptance bar for this harness).
const KERNEL_CASES: usize = 256;

#[test]
fn blocked_matmul_matches_naive_bitwise() {
    assert_no_divergence(&MatmulNaiveVsBlocked, KERNEL_CASES);
}

#[test]
fn csr_spmm_matches_dense_matmul() {
    assert_no_divergence(&SpmmVsDense::default(), KERNEL_CASES);
}

#[test]
fn spatial_grid_orca_matches_brute_force_bitwise() {
    assert_no_divergence(&OrcaGridVsBrute, KERNEL_CASES);
}

#[test]
fn parallel_runner_matches_serial_bitwise() {
    assert_no_divergence(&SerialVsParallelRunner::default(), KERNEL_CASES);
}

#[test]
fn cached_mia_episode_loss_matches_fresh_bitwise() {
    assert_no_divergence(&CachedVsFreshMia, KERNEL_CASES);
}

#[test]
fn pooled_tape_gradients_match_fresh_bitwise() {
    assert_no_divergence(&PooledVsFreshTape, KERNEL_CASES);
}

#[test]
fn streaming_scene_engine_matches_precomputed_contexts_bitwise() {
    assert_no_divergence(&StreamingVsPrecomputed, KERNEL_CASES);
}

#[test]
fn poshgnn_sparse_and_dense_kernels_agree_on_whole_episodes() {
    // full pipeline per case (dataset → ORCA → MIA → model), so fewer cases
    // than the raw kernel pairs; still seeded and reproducible
    assert_no_divergence(&SparseVsDensePoshGnn::default(), 24);
}

#[test]
fn multi_room_scheduler_matches_sequential_engines_bitwise() {
    // no SLO budget in the generated configs, so the ladder and shedding are
    // inert and the scheduler must be a pure reordering of sequential work
    assert_no_divergence(&MultiRoomVsSequential, KERNEL_CASES);
}

#[test]
fn incremental_scene_maintenance_matches_from_scratch_bitwise() {
    // delta distance rows, warm sweep candidates, and retained-edge reuse
    // vs. the from-scratch oracle: bitwise-clean across teleports, lobby
    // churn, and retention windows down to a single state
    assert_no_divergence(&IncrementalVsFromScratch, KERNEL_CASES);
}

#[test]
fn pruned_scene_matches_full_n_bitwise_at_sufficient_k() {
    // K = N−1 pins bitwise identity (membership, distances, masks, edges,
    // decisions); the small serving-K leg pins the top-5 agreement floor
    assert_no_divergence(&PrunedVsFull::default(), KERNEL_CASES);
}

#[test]
fn f32_serving_path_tracks_f64_inference_behaviorally() {
    // the serving split is a precision change, not a refactor: tolerance +
    // top-k-overlap oracle at the full kernel-pair case count
    assert_no_divergence(&ServeF32VsF64::default(), KERNEL_CASES);
}
