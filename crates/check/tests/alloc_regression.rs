//! Allocation-regression guard for the training hot path.
//!
//! The episode MIA cache plus the arena tape are supposed to take the global
//! allocator out of the inner training loop: after the first epoch warms the
//! slab and the buffer pool, later epochs should run almost allocation-free.
//! This test pins that property with a counting `#[global_allocator]`
//! (integration tests are separate binaries, so the counter is scoped to
//! this file): per-epoch allocations after epoch 1 on the cached path must
//! be at least 10× lower than on the pre-cache baseline path
//! (`fresh_mia + fresh_tape`, the code path prior to this overhaul).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use poshgnn::{PoshGnn, PoshGnnConfig, TargetContext};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn episode_ctx() -> TargetContext {
    let dataset = Dataset::generate(DatasetKind::Hubs, 7);
    let cfg = ScenarioConfig {
        n_participants: 24,
        vr_fraction: 0.5,
        time_steps: 6,
        room_side: 6.0,
        body_radius: 0.2,
        seed: 11,
    };
    let scenario = dataset.sample_scenario(&cfg);
    TargetContext::new(&scenario, 0, 0.5)
}

/// Allocations of one steady-state epoch: train fresh identically seeded
/// models for 1 and 3 epochs and difference the counts, so construction,
/// slab precompute, and pool warm-up (all epoch-1 costs) cancel out.
fn per_epoch_after_first(config: PoshGnnConfig, ctx: &TargetContext) -> u64 {
    let contexts = std::slice::from_ref(ctx);
    let mut one = PoshGnn::new(config);
    let mut three = PoshGnn::new(config);
    let a1 = allocations_during(|| {
        one.train(contexts, 1);
    });
    let a3 = allocations_during(|| {
        three.train(contexts, 3);
    });
    (a3 - a1) / 2
}

#[test]
fn cached_training_epochs_allocate_10x_less_than_baseline() {
    let ctx = episode_ctx();
    let baseline_cfg = PoshGnnConfig { fresh_mia: true, fresh_tape: true, ..Default::default() };
    let cached_cfg = PoshGnnConfig { fresh_mia: false, fresh_tape: false, ..Default::default() };

    let baseline = per_epoch_after_first(baseline_cfg, &ctx);
    let cached = per_epoch_after_first(cached_cfg, &ctx);

    eprintln!("per-epoch allocations after epoch 1: baseline {baseline}, cached {cached}");
    assert!(baseline > 0, "baseline epoch made no allocations — instrumentation broken?");
    assert!(
        baseline >= 10 * cached.max(1),
        "per-epoch allocations after epoch 1: baseline {baseline} vs cached {cached} \
         — the MIA cache + tape arena must cut steady-state allocations by ≥10x"
    );
}

#[test]
fn losses_match_between_baseline_and_cached_paths() {
    // The two configurations must descend the same trajectory: the cache and
    // arena are pure performance changes (bit-identical per DESIGN.md §7).
    let ctx = episode_ctx();
    let contexts = std::slice::from_ref(&ctx);
    let mut baseline =
        PoshGnn::new(PoshGnnConfig { fresh_mia: true, fresh_tape: true, ..Default::default() });
    let mut cached =
        PoshGnn::new(PoshGnnConfig { fresh_mia: false, fresh_tape: false, ..Default::default() });
    let hb = baseline.train(contexts, 4);
    let hc = cached.train(contexts, 4);
    for (epoch, (b, c)) in hb.iter().zip(&hc).enumerate() {
        assert_eq!(b.to_bits(), c.to_bits(), "epoch {epoch} loss: baseline {b:?} vs cached {c:?}");
    }
}
