//! Finite-difference gradient checking as a library.
//!
//! Generalizes the single-parameter helper that used to live in
//! `crates/tensor/tests/gradcheck.rs` into two entry points:
//!
//! * [`check_params`] — any loss built from named parameter blocks on a
//!   fresh tape; every partial derivative is compared against a central
//!   finite difference and the worst relative error is reported per block.
//! * [`check_poshgnn`] — walks **all** POSHGNN parameters (the PDR 2-layer
//!   GNN of Eq. 1 and the LWP 3-layer GNN feeding the preservation gate;
//!   MIA is parameter-free, so its fusion enters as the constant features
//!   the gradient flows through) through the full Def. 7 episode loss via
//!   [`PoshGnn::episode_loss`], using the model's own `ParamStore` so the
//!   checked graph is byte-for-byte the one `train` descends.
//!
//! The relative-error denominator is `max(1, |analytic|, |numeric|)`, i.e.
//! absolute error for small gradients and relative error for large ones —
//! the standard gradcheck metric. Tolerances: 1e-5 for single ops (the old
//! tensor-test bound), 1e-4 per POSHGNN block (an episode chains hundreds of
//! ops, each contributing O(eps²) truncation error).

use poshgnn::{PoshGnn, TargetContext};
use xr_tensor::{Matrix, ParamStore, Tape, Var};

/// Step size and acceptance bound for a finite-difference check.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckConfig {
    /// Central-difference step (loss is evaluated at `θ ± eps`).
    pub eps: f64,
    /// Maximum allowed `|analytic − numeric| / max(1, |analytic|, |numeric|)`.
    pub rel_tol: f64,
}

impl Default for GradCheckConfig {
    fn default() -> Self {
        GradCheckConfig { eps: 1e-5, rel_tol: 1e-5 }
    }
}

/// Worst finite-difference disagreement inside one named parameter block.
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Parameter block name (e.g. `pdr.0.w_self`).
    pub block: String,
    /// Number of scalars in the block.
    pub scalars: usize,
    /// Worst relative error across the block.
    pub max_rel_err: f64,
    /// Flat index of the worst scalar.
    pub worst_index: usize,
    /// Analytic gradient at the worst scalar.
    pub analytic: f64,
    /// Central finite difference at the worst scalar.
    pub numeric: f64,
}

/// Per-block results of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// One entry per parameter block, in registration order.
    pub blocks: Vec<BlockReport>,
}

impl GradCheckReport {
    /// Worst relative error across all blocks.
    pub fn max_rel_err(&self) -> f64 {
        self.blocks.iter().map(|b| b.max_rel_err).fold(0.0, f64::max)
    }

    /// Human-readable per-block table (also the failure artifact format).
    pub fn render_table(&self) -> String {
        let mut out =
            String::from("block                    scalars   max_rel_err   analytic@worst   numeric@worst\n");
        for b in &self.blocks {
            out.push_str(&format!(
                "{:<24} {:>7}   {:>11.3e}   {:>14.6e}   {:>13.6e}\n",
                b.block, b.scalars, b.max_rel_err, b.analytic, b.numeric
            ));
        }
        out
    }

    /// Panics (with the rendered table, also written as an artifact) if any
    /// block's worst relative error exceeds `tol`.
    pub fn assert_within(&self, tol: f64) {
        if self.max_rel_err() >= tol {
            let table = self.render_table();
            let artifact = crate::write_artifact("gradcheck-failure.txt", &table);
            panic!(
                "gradient check failed: max relative error {:.3e} ≥ tolerance {tol:.1e}\n{table}{}",
                self.max_rel_err(),
                artifact.map(|p| format!("(report written to {})", p.display())).unwrap_or_default()
            );
        }
    }
}

/// Checks the gradient of an arbitrary loss built from named parameter
/// blocks. `loss` receives a fresh tape plus one [`Var`] per block (in the
/// order given) and must return a `1×1` loss node; it is re-evaluated
/// `2·scalars` times for the central differences, so keep blocks small.
pub fn check_params(
    blocks: &[(&str, Matrix)],
    cfg: &GradCheckConfig,
    loss: impl for<'t> Fn(&'t Tape, &[Var<'t>]) -> Var<'t>,
) -> GradCheckReport {
    let build_store = |values: &[Matrix]| {
        let mut store = ParamStore::new();
        let ids: Vec<_> =
            blocks.iter().zip(values).map(|((name, _), v)| store.register(*name, v.clone())).collect();
        (store, ids)
    };
    let eval = |values: &[Matrix]| {
        let (store, ids) = build_store(values);
        let tape = Tape::new();
        let vars: Vec<Var<'_>> = ids.iter().map(|&id| tape.param(&store, id)).collect();
        loss(&tape, &vars).scalar()
    };

    // analytic pass
    let base: Vec<Matrix> = blocks.iter().map(|(_, m)| m.clone()).collect();
    let (mut store, ids) = build_store(&base);
    let analytic: Vec<Matrix> = {
        let tape = Tape::new();
        let vars: Vec<Var<'_>> = ids.iter().map(|&id| tape.param(&store, id)).collect();
        loss(&tape, &vars).backward(&mut store);
        ids.iter().map(|&id| store.grad(id).clone()).collect()
    };

    let mut report = GradCheckReport { blocks: Vec::with_capacity(blocks.len()) };
    for (bi, (name, _)) in blocks.iter().enumerate() {
        let mut worst = BlockReport {
            block: name.to_string(),
            scalars: base[bi].len(),
            max_rel_err: 0.0,
            worst_index: 0,
            analytic: 0.0,
            numeric: 0.0,
        };
        for i in 0..base[bi].len() {
            let probe = |delta: f64| {
                let mut values = base.clone();
                values[bi].as_mut_slice()[i] += delta;
                eval(&values)
            };
            let numeric = (probe(cfg.eps) - probe(-cfg.eps)) / (2.0 * cfg.eps);
            let a = analytic[bi].as_slice()[i];
            let rel = (a - numeric).abs() / 1.0_f64.max(a.abs()).max(numeric.abs());
            if rel > worst.max_rel_err {
                worst = BlockReport { max_rel_err: rel, worst_index: i, analytic: a, numeric, ..worst };
            }
        }
        report.blocks.push(worst);
    }
    report
}

/// Single-block convenience wrapper — the promoted
/// `crates/tensor/tests/gradcheck.rs` helper, now returning a report instead
/// of asserting inline.
pub fn check_single(
    values: &[f64],
    rows: usize,
    cols: usize,
    cfg: &GradCheckConfig,
    f: impl for<'t> Fn(&'t Tape, Var<'t>) -> Var<'t>,
) -> GradCheckReport {
    let w = Matrix::from_vec(rows, cols, values.to_vec()).expect("rows*cols must match values.len()");
    check_params(&[("w", w)], cfg, |tape, vars| f(tape, vars[0]))
}

/// Walks every POSHGNN parameter block through the full Def. 7 episode loss
/// on `ctx` and compares the BPTT gradients against central finite
/// differences. The model's parameters are perturbed in place (through
/// [`PoshGnn::params_mut`]) and restored exactly before returning.
pub fn check_poshgnn(model: &mut PoshGnn, ctx: &TargetContext, cfg: &GradCheckConfig) -> GradCheckReport {
    // analytic pass through the exact training graph
    model.params_mut().zero_grads();
    {
        let tape = Tape::new();
        let loss = model.episode_loss(&tape, ctx);
        loss.backward(model.params_mut());
    }
    let ids: Vec<_> = model.params().ids().collect();
    let analytic: Vec<Matrix> = ids.iter().map(|&id| model.params().grad(id).clone()).collect();

    let eval = |model: &PoshGnn| {
        let tape = Tape::new();
        model.episode_loss(&tape, ctx).scalar()
    };

    let mut report = GradCheckReport { blocks: Vec::with_capacity(ids.len()) };
    for (bi, &id) in ids.iter().enumerate() {
        let scalars = model.params().value(id).len();
        let mut worst = BlockReport {
            block: model.params().name(id).to_string(),
            scalars,
            max_rel_err: 0.0,
            worst_index: 0,
            analytic: 0.0,
            numeric: 0.0,
        };
        for i in 0..scalars {
            let original = model.params().value(id).as_slice()[i];
            model.params_mut().value_mut(id).as_mut_slice()[i] = original + cfg.eps;
            let plus = eval(model);
            model.params_mut().value_mut(id).as_mut_slice()[i] = original - cfg.eps;
            let minus = eval(model);
            model.params_mut().value_mut(id).as_mut_slice()[i] = original; // exact restore
            let numeric = (plus - minus) / (2.0 * cfg.eps);
            let a = analytic[bi].as_slice()[i];
            let rel = (a - numeric).abs() / 1.0_f64.max(a.abs()).max(numeric.abs());
            if rel > worst.max_rel_err {
                worst = BlockReport { max_rel_err: rel, worst_index: i, analytic: a, numeric, ..worst };
            }
        }
        report.blocks.push(worst);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_a_simple_quadratic() {
        let report = check_single(&[0.5, -1.0, 2.0], 3, 1, &GradCheckConfig::default(), |tape, w| {
            let a = tape.constant(Matrix::from_fn(3, 3, |i, j| if i == j { 0.0 } else { 1.0 }));
            w.t().matmul(a).matmul(w).sum()
        });
        assert_eq!(report.blocks.len(), 1);
        report.assert_within(1e-5);
    }

    #[test]
    fn multi_block_losses_report_each_block() {
        let w1 = Matrix::from_fn(2, 2, |r, c| 0.3 * (r as f64) - 0.2 * c as f64 + 0.1);
        let w2 = Matrix::from_fn(2, 1, |r, _| 0.4 - 0.3 * r as f64);
        let report =
            check_params(&[("first", w1), ("second", w2)], &GradCheckConfig::default(), |tape, vars| {
                let x = tape.constant(Matrix::from_fn(3, 2, |r, c| (r + c) as f64 * 0.25 + 0.1));
                x.matmul(vars[0]).tanh().matmul(vars[1]).sigmoid().sum()
            });
        assert_eq!(report.blocks.len(), 2);
        assert_eq!(report.blocks[0].block, "first");
        assert_eq!(report.blocks[1].block, "second");
        report.assert_within(1e-5);
    }

    #[test]
    #[should_panic(expected = "gradient check failed")]
    fn catches_a_wrong_gradient() {
        // exp(w).sum() has gradient exp(w); compare against a loss whose
        // *value* we sabotage asymmetrically via a kinked term the tape
        // differentiates as zero at the base point — a genuine mismatch.
        let report = check_single(&[0.3], 1, 1, &GradCheckConfig::default(), |_tape, w| {
            // relu kink exactly at the base point 0.3: analytic picks one
            // side, the central difference averages both.
            w.add_scalar(-0.3).relu().sum() + w.sum()
        });
        report.assert_within(1e-5);
    }
}
