//! Golden replay: seeded end-to-end runs snapshotted to checked-in files.
//!
//! [`replay`] drives the whole pipeline — dataset generation, ORCA-simulated
//! scenario sampling, POSHGNN training, per-step recommendation, utility
//! evaluation, and a small method-comparison table computed through the
//! parallel runner — and serializes every numeric output with shortest
//! round-trip [`crate::fmt_f64`] formatting. Because every stage derives its
//! randomness from fixed seeds and every kernel is bit-deterministic, the
//! snapshot is **byte-identical** across runs, optimization levels, and
//! `AFTER_THREADS` settings; wall-clock quantities are deliberately
//! excluded.
//!
//! [`assert_matches_golden`] compares a snapshot against
//! `crates/check/golden/<name>`; run with `UPDATE_GOLDEN=1` to (re)generate
//! the files after an intentional numeric change, and commit the diff. On
//! mismatch the actual snapshot is written to [`crate::artifact_dir`] so CI
//! uploads it next to the minimized counterexamples.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use poshgnn::recommender::{threshold_decision, AfterRecommender};
use poshgnn::{evaluate_sequence, PoshGnn, PoshGnnConfig, StepView, UtilityBreakdown};
use xr_baselines::{NearestRecommender, RandomRecommender};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_eval::{build_contexts, par_map_indexed, RenderAllRecommender};

use crate::fmt_f64;

/// Everything that seeds one golden replay.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Synthetic universe to generate.
    pub dataset: DatasetKind,
    /// Universe seed.
    pub dataset_seed: u64,
    /// Room/scenario sampling parameters.
    pub scenario: ScenarioConfig,
    /// Social-presence weight for every context.
    pub beta: f64,
    /// Target users whose contexts are built (the first one is replayed
    /// step by step).
    pub targets: Vec<usize>,
    /// POSHGNN training epochs.
    pub train_epochs: usize,
    /// Model hyperparameters.
    pub model: PoshGnnConfig,
}

impl ReplayConfig {
    /// The small checked-in replay: fast enough for every `cargo test` run,
    /// big enough to traverse every pipeline stage.
    pub fn small() -> Self {
        ReplayConfig {
            dataset: DatasetKind::Hubs,
            dataset_seed: 7,
            scenario: ScenarioConfig {
                n_participants: 16,
                vr_fraction: 0.5,
                time_steps: 8,
                room_side: 6.0,
                body_radius: 0.2,
                seed: 11,
            },
            beta: 0.5,
            targets: vec![0, 3],
            train_epochs: 6,
            // the golden pins the f64 train/infer path byte-identically, so
            // the serving precision is fixed regardless of AFTER_SERVE_F32
            // (the f32 path is covered by the ServeF32VsF64 tolerance
            // subject instead)
            model: PoshGnnConfig { serve_f32: false, ..Default::default() },
        }
    }
}

fn push_breakdown(out: &mut String, b: &UtilityBreakdown) {
    out.push_str(&format!("after_utility: {}\n", fmt_f64(b.after_utility)));
    out.push_str(&format!("preference: {}\n", fmt_f64(b.preference)));
    out.push_str(&format!("social_presence: {}\n", fmt_f64(b.social_presence)));
    out.push_str(&format!("view_occlusion_rate: {}\n", fmt_f64(b.view_occlusion_rate)));
    out.push_str(&format!("mean_recommended: {}\n", fmt_f64(b.mean_recommended)));
}

/// Runs the seeded end-to-end pipeline and serializes it. See the module
/// docs for the determinism contract.
pub fn replay(cfg: &ReplayConfig) -> String {
    let _span = xr_obs::span!("xr_check.golden.replay");
    let dataset = Dataset::generate(cfg.dataset, cfg.dataset_seed);
    let scenario = dataset.sample_scenario(&cfg.scenario);
    let contexts = build_contexts(&scenario, &cfg.targets, cfg.beta);

    let mut model = PoshGnn::new(cfg.model);
    let losses = model.train(&contexts, cfg.train_epochs);
    let trained = model.export_params();

    let mut out = String::from("# xr_check golden replay v1\n");
    out.push_str(&format!(
        "config: dataset={:?} dataset_seed={} n={} T={} room={} vr={} body_r={} scenario_seed={} beta={} targets={:?} epochs={}\n",
        cfg.dataset,
        cfg.dataset_seed,
        cfg.scenario.n_participants,
        cfg.scenario.time_steps,
        fmt_f64(cfg.scenario.room_side),
        fmt_f64(cfg.scenario.vr_fraction),
        fmt_f64(cfg.scenario.body_radius),
        cfg.scenario.seed,
        fmt_f64(cfg.beta),
        cfg.targets,
        cfg.train_epochs,
    ));

    out.push_str("\n[loss]\n");
    for (epoch, loss) in losses.iter().enumerate() {
        out.push_str(&format!("epoch {epoch}: {}\n", fmt_f64(*loss)));
    }

    // per-step soft outputs and decisions on the first context
    let ctx = &contexts[0];
    out.push_str(&format!("\n[r_t target={}]\n", ctx.target));
    let mut decisions = Vec::with_capacity(ctx.t_max() + 1);
    model.begin_episode(&StepView::new(ctx, 0));
    for t in 0..=ctx.t_max() {
        let soft = model.soft_recommend(ctx, t);
        let line: Vec<String> = soft.iter().map(|&v| fmt_f64(v)).collect();
        out.push_str(&format!("t={t}: {}\n", line.join(" ")));
        decisions.push(threshold_decision(&soft, ctx.target, cfg.model.threshold));
    }

    out.push_str("\n[decisions]\n");
    for (t, d) in decisions.iter().enumerate() {
        let bits: String = d.iter().map(|&b| if b { '1' } else { '0' }).collect();
        out.push_str(&format!("t={t}: {bits}\n"));
    }

    out.push_str("\n[evaluation]\n");
    push_breakdown(&mut out, &evaluate_sequence(ctx, &decisions));

    // method table over all targets; independent (method × target) cells run
    // through the parallel runner exactly like the paper tables — per-cell
    // constructions are seeded, so the table is identical at any AFTER_THREADS
    let methods = ["POSHGNN", "Random", "Nearest", "RenderAll"];
    let cells = par_map_indexed(methods.len() * contexts.len(), |cell| {
        let (mi, ti) = (cell / contexts.len(), cell % contexts.len());
        let ctx = &contexts[ti];
        let mut rec: Box<dyn AfterRecommender> = match methods[mi] {
            "POSHGNN" => {
                let mut m = PoshGnn::new(cfg.model);
                assert!(m.import_params(&trained), "trained snapshot must fit a fresh model");
                Box::new(m)
            }
            "Random" => Box::new(RandomRecommender::new(6, 9)),
            "Nearest" => Box::new(NearestRecommender::new(6)),
            _ => Box::new(RenderAllRecommender),
        };
        let episode = rec.run_episode(ctx);
        evaluate_sequence(ctx, &episode)
    });

    out.push_str("\n[table]\n");
    for (mi, name) in methods.iter().enumerate() {
        let per_target = &cells[mi * contexts.len()..(mi + 1) * contexts.len()];
        let k = per_target.len() as f64;
        let mean = |f: fn(&UtilityBreakdown) -> f64| per_target.iter().map(f).sum::<f64>() / k;
        out.push_str(&format!(
            "{name}: utility={} preference={} social={} occlusion={} recommended={}\n",
            fmt_f64(mean(|b| b.after_utility)),
            fmt_f64(mean(|b| b.preference)),
            fmt_f64(mean(|b| b.social_presence)),
            fmt_f64(mean(|b| b.view_occlusion_rate)),
            fmt_f64(mean(|b| b.mean_recommended)),
        ));
    }
    out
}

/// Directory of the checked-in golden files.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Compares `snapshot` to the checked-in golden file `name`, honoring the
/// `UPDATE_GOLDEN=1` regeneration path. On mismatch, panics after writing
/// the actual snapshot to [`crate::artifact_dir`].
pub fn assert_matches_golden(name: &str, snapshot: &str) {
    assert_matches_golden_at(&golden_dir(), name, snapshot, update_golden_requested());
}

/// Whether the environment requests golden regeneration.
pub fn update_golden_requested() -> bool {
    std::env::var("UPDATE_GOLDEN").map(|v| v == "1").unwrap_or(false)
}

/// [`assert_matches_golden`] against an explicit directory and update flag —
/// the testable core of the workflow.
pub fn assert_matches_golden_at(dir: &std::path::Path, name: &str, snapshot: &str, update: bool) {
    let path = dir.join(name);
    if update {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create golden dir {}: {e}", dir.display()));
        std::fs::write(&path, snapshot)
            .unwrap_or_else(|e| panic!("cannot write golden {}: {e}", path.display()));
        eprintln!("xr_check: updated golden {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with:\n    UPDATE_GOLDEN=1 cargo test -p xr_check\nand commit the result",
            path.display()
        )
    });
    if golden != snapshot {
        let artifact = crate::write_artifact(&format!("golden-actual-{name}"), snapshot);
        let diff_line = golden
            .lines()
            .zip(snapshot.lines())
            .enumerate()
            .find(|(_, (g, s))| g != s)
            .map(|(i, (g, s))| format!("first differing line {}:\n  golden:   {g}\n  actual:   {s}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: golden {} vs actual {}",
                    golden.lines().count(),
                    snapshot.lines().count()
                )
            });
        panic!(
            "snapshot diverges from golden {}\n{diff_line}\n{}\nif the change is intentional, regenerate with UPDATE_GOLDEN=1 cargo test -p xr_check and commit",
            path.display(),
            artifact.map(|p| format!("full actual snapshot written to {}", p.display())).unwrap_or_default()
        );
    }
}

/// One process-wide lock for every `with_*` env helper: tests mutating
/// different variables must still serialize against each other.
fn env_lock() -> &'static Mutex<()> {
    static ENV_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    ENV_LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `f` with the env var `key` forced to `value`, restoring the previous
/// state afterwards, under the process-wide env lock.
fn with_env_var<R>(key: &str, value: &str, f: impl FnOnce() -> R) -> R {
    let _guard = env_lock().lock().expect("env lock poisoned");
    let previous = std::env::var(key).ok();
    std::env::set_var(key, value);
    let result = f();
    match previous {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
    result
}

/// Runs `f` with `AFTER_THREADS` forced to `n`, restoring the previous value
/// afterwards. Serialized process-wide so concurrent tests cannot interleave
/// env mutations.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    with_env_var("AFTER_THREADS", &n.to_string(), f)
}

/// Runs `f` with `AFTER_STREAMING` forced on (`1`, scene-engine path) or off
/// (`0`, legacy per-target precompute), restoring the previous value
/// afterwards. Shares the env lock with [`with_threads`].
pub fn with_streaming<R>(on: bool, f: impl FnOnce() -> R) -> R {
    with_env_var("AFTER_STREAMING", if on { "1" } else { "0" }, f)
}

/// Runs `f` with `AFTER_INCREMENTAL` forced on (`1`, O(Δ) scene maintenance
/// and MIA edge-deltas, the default) or off (`0`, the from-scratch oracle),
/// restoring the previous value afterwards. Shares the env lock with
/// [`with_threads`].
pub fn with_incremental<R>(on: bool, f: impl FnOnce() -> R) -> R {
    with_env_var("AFTER_INCREMENTAL", if on { "1" } else { "0" }, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> &'static str {
        "# fake snapshot\nvalue: 1\n"
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xr_check_golden_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn update_then_compare_round_trips() {
        let dir = tempdir("roundtrip");
        assert_matches_golden_at(&dir, "g.txt", tiny_snapshot(), true); // UPDATE_GOLDEN path
        assert_matches_golden_at(&dir, "g.txt", tiny_snapshot(), false); // replay path
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatch_names_the_first_differing_line() {
        let dir = tempdir("mismatch");
        assert_matches_golden_at(&dir, "g.txt", tiny_snapshot(), true);
        let err = std::panic::catch_unwind(|| {
            assert_matches_golden_at(&dir, "g.txt", "# fake snapshot\nvalue: 2\n", false);
        })
        .expect_err("mismatch must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("first differing line 2"), "unhelpful message: {msg}");
        assert!(msg.contains("UPDATE_GOLDEN=1"), "must document the regeneration path: {msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_golden_documents_the_workflow() {
        let dir = tempdir("missing");
        let err = std::panic::catch_unwind(|| {
            assert_matches_golden_at(&dir, "absent.txt", tiny_snapshot(), false);
        })
        .expect_err("missing golden must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("UPDATE_GOLDEN=1 cargo test -p xr_check"), "message: {msg}");
    }

    #[test]
    fn with_threads_restores_the_environment() {
        let before = std::env::var("AFTER_THREADS").ok();
        let inside = with_threads(3, || std::env::var("AFTER_THREADS").unwrap());
        assert_eq!(inside, "3");
        assert_eq!(std::env::var("AFTER_THREADS").ok(), before);
    }
}
