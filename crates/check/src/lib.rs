//! # xr_check — the correctness harness
//!
//! Reusable verification tooling for the AFTER/POSHGNN workspace, built on
//! three pillars:
//!
//! * [`diff`] — a **differential oracle runner**: any pair of supposedly
//!   equivalent implementations (dense vs. CSR SpMM, naive vs. blocked
//!   matmul, grid vs. brute-force ORCA neighbors, serial vs. parallel
//!   tables, sparse vs. dense POSHGNN) is executed on proptest-generated
//!   scenarios; the first diverging step is reported with a greedily
//!   minimized counterexample and the `xr_obs` span context at the
//!   divergence point, and the report is written to an artifact file CI can
//!   upload.
//! * [`gradcheck`] — a **finite-difference gradient checker** generalized
//!   from the old `crates/tensor/tests/gradcheck.rs` helper into a library
//!   API: arbitrary multi-parameter losses ([`gradcheck::check_params`]) and
//!   the full POSHGNN episode loss walked per parameter block
//!   ([`gradcheck::check_poshgnn`]).
//! * [`golden`] — a **golden replay suite**: a seeded end-to-end run
//!   (dataset → ORCA trajectories → training → recommendation → evaluation →
//!   parallel table) serialized to a deterministic snapshot, compared
//!   byte-for-byte against checked-in golden files, regenerated with
//!   `UPDATE_GOLDEN=1`, and asserted identical at `AFTER_THREADS=1` and `8`.
//!
//! Every future kernel or scheduling change is validated against this crate
//! (`cargo test -p xr_check`); CI runs it under an `AFTER_THREADS={1,8}`
//! matrix. Conventions live in DESIGN.md §9.

pub mod diff;
pub mod golden;
pub mod gradcheck;
pub mod metrics;

use std::path::PathBuf;

/// Directory for machine-readable failure artifacts (minimized
/// counterexamples, mismatching snapshots). `XR_CHECK_ARTIFACTS` overrides;
/// the default is `target/xr_check/` at the workspace root, which the CI
/// `verify` job uploads when a run fails.
pub fn artifact_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("XR_CHECK_ARTIFACTS") {
        return PathBuf::from(dir);
    }
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("target");
    dir.push("xr_check");
    dir
}

/// Writes a failure artifact, returning its path (best-effort: IO errors are
/// reported on stderr but never mask the assertion that triggered the write).
pub(crate) fn write_artifact(file_name: &str, contents: &str) -> Option<PathBuf> {
    let dir = artifact_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("xr_check: cannot create artifact dir {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(file_name);
    match std::fs::write(&path, contents) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("xr_check: cannot write artifact {}: {e}", path.display());
            None
        }
    }
}

/// Formats an `f64` with shortest round-trip precision (Rust's `Display`
/// algorithm is deterministic and bit-faithful), so snapshot and report text
/// is byte-stable whenever the underlying computation is.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 && v.is_sign_negative() {
        // canonicalize -0.0: sign of zero is not observable in any table
        "0".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_dir_lands_in_target() {
        let dir = artifact_dir();
        assert!(dir.ends_with("target/xr_check") || std::env::var("XR_CHECK_ARTIFACTS").is_ok());
    }

    #[test]
    fn f64_formatting_round_trips_and_canonicalizes_zero() {
        for v in [0.1 + 0.2, 1.0 / 3.0, 6.02214076e23, -1.5e-300] {
            assert_eq!(fmt_f64(v).parse::<f64>().unwrap().to_bits(), v.to_bits());
        }
        assert_eq!(fmt_f64(-0.0), "0");
        assert_eq!(fmt_f64(0.0), "0");
    }
}
