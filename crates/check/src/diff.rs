//! Differential oracle runner.
//!
//! A [`DiffSubject`] is a pair of supposedly equivalent implementations plus
//! a proptest-backed scenario generator. [`run_differential`] executes the
//! pair on seeded generated cases; on the first mismatch it greedily shrinks
//! the case while the divergence persists, then reports the first diverging
//! step, the minimized counterexample, and the `xr_obs` span context at the
//! divergence point — and writes the whole report to
//! [`crate::artifact_dir`] so CI can upload it.
//!
//! Shipped subjects cover the workspace's four equivalence-sensitive kernel
//! pairs (naive vs. blocked matmul, dense vs. CSR SpMM, brute-force vs.
//! spatial-grid ORCA neighbors, serial vs. parallel runner) plus one
//! recommender pair (sparse vs. dense-kernel POSHGNN). Case generation is
//! deterministic — case `i` always draws from the same seed — so failures
//! reproduce exactly across runs, machines, and thread counts.

use std::rc::Rc;

use proptest::collection::vec as pvec;
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xr_crowd::{Agent, CrowdSimulator, Room, SimConfig};
use xr_datasets::{Dataset, DatasetKind, ScenarioConfig};
use xr_graph::geom::Point2;
use xr_tensor::{CsrAdj, Matrix};

/// Seed stream for case generation: fixed base, decorrelated per index.
fn case_seed(case_index: usize) -> u64 {
    0x5EED_D1FF_0000_0000 ^ (case_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The first step at which the two implementations disagree.
#[derive(Debug, Clone)]
pub struct StepDivergence {
    /// Subject-defined step index (time step, element index, cell index…).
    pub step: usize,
    /// What disagreed, with both values.
    pub detail: String,
}

/// A fully described divergence, as returned by [`run_differential`].
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which implementation pair diverged.
    pub pair: String,
    /// Index of the originally failing generated case.
    pub case_index: usize,
    /// RNG seed that regenerates the original case.
    pub case_seed: u64,
    /// First diverging step of the **minimized** case.
    pub step: usize,
    /// Mismatch detail at that step.
    pub detail: String,
    /// Description of the originally generated case.
    pub original_case: String,
    /// Description of the greedily minimized case.
    pub minimized_case: String,
    /// Number of successful shrink steps applied.
    pub shrink_steps: usize,
    /// `xr_obs` span path active at the divergence point.
    pub span_path: String,
}

impl Divergence {
    /// The artifact / panic-message rendering.
    pub fn render(&self) -> String {
        format!(
            "differential divergence: {}\n\
             case #{} (seed {:#x})\n\
             first diverging step: {}\n\
             detail: {}\n\
             span context: {}\n\
             original case: {}\n\
             minimized case ({} shrink steps): {}\n",
            self.pair,
            self.case_index,
            self.case_seed,
            self.step,
            self.detail,
            if self.span_path.is_empty() { "(no active obs context)" } else { &self.span_path },
            self.original_case,
            self.shrink_steps,
            self.minimized_case
        )
    }
}

/// A differential pair: scenario generation, comparison, and shrinking.
pub trait DiffSubject {
    /// One generated scenario.
    type Case;

    /// Name of the implementation pair (used in reports and artifacts).
    fn pair(&self) -> String;

    /// Draws one case from `rng` (typically via proptest strategies).
    fn generate(&self, rng: &mut StdRng) -> Self::Case;

    /// Runs both implementations; `Some` describes the first diverging step.
    fn compare(&self, case: &Self::Case) -> Option<StepDivergence>;

    /// Strictly smaller candidate cases, tried in order during shrinking.
    fn shrink(&self, _case: &Self::Case) -> Vec<Self::Case> {
        Vec::new()
    }

    /// One-line description of a case for the report.
    fn describe(&self, case: &Self::Case) -> String;
}

/// Result of a differential run.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The pair that was exercised.
    pub pair: String,
    /// Cases executed before stopping (all of them when no divergence).
    pub cases_run: usize,
    /// The minimized divergence, if any case disagreed.
    pub divergence: Option<Divergence>,
}

/// Runs `subject` on `cases` generated scenarios, stopping at (and
/// minimizing) the first divergence. Shrinking is greedy: the first shrink
/// candidate that still diverges becomes the new case, until none does.
pub fn run_differential<S: DiffSubject>(subject: &S, cases: usize) -> DiffReport {
    let pair = subject.pair();
    // run under *some* observability context so the flight recorder has the
    // recent span/event history to dump when a case diverges; harnesses that
    // installed their own context keep it. The panic hook covers assertion
    // panics (assert_no_divergence, golden replays) when AFTER_FLIGHT_DUMP
    // is set — CI points it into the artifact dir.
    xr_obs::recorder::install_panic_hook();
    let own_ctx = if xr_obs::is_active() { None } else { Some(xr_obs::ObsCtx::new(true, false)) };
    let _own_guard = own_ctx.as_ref().map(xr_obs::ObsCtx::install);
    let _span = xr_obs::span!("xr_check.diff", cases = cases);
    for case_index in 0..cases {
        xr_obs::counter_add("xr_check.diff.cases", &[("pair", pair.as_str())], 1);
        let seed = case_seed(case_index);
        let mut rng = StdRng::seed_from_u64(seed);
        let case = subject.generate(&mut rng);
        let Some(first) = subject.compare(&case) else { continue };
        // capture the obs span context at the divergence point, before any
        // shrinking re-runs overwrite it
        let span_path = xr_obs::current_span_path();
        let original_desc = subject.describe(&case);

        let mut minimized = case;
        let mut at = first;
        let mut shrink_steps = 0usize;
        'shrinking: loop {
            for candidate in subject.shrink(&minimized) {
                if let Some(d) = subject.compare(&candidate) {
                    minimized = candidate;
                    at = d;
                    shrink_steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }

        let divergence = Divergence {
            pair: pair.clone(),
            case_index,
            case_seed: seed,
            step: at.step,
            detail: at.detail,
            original_case: original_desc,
            minimized_case: subject.describe(&minimized),
            shrink_steps,
            span_path,
        };
        let file = format!("counterexample-{}.txt", sanitize(&pair));
        crate::write_artifact(&file, &divergence.render());
        // drop the flight recorder next to the counterexample: the recent
        // span/event ring shows what the process was doing when it diverged
        let flight = crate::artifact_dir().join(format!("flight-{}.json", sanitize(&pair)));
        xr_obs::recorder::dump_to(&flight, "diff_divergence");
        return DiffReport { pair, cases_run: case_index + 1, divergence: Some(divergence) };
    }
    DiffReport { pair, cases_run: cases, divergence: None }
}

/// [`run_differential`] that panics with the rendered report on divergence —
/// the assertion form the test suites use.
pub fn assert_no_divergence<S: DiffSubject>(subject: &S, cases: usize) {
    let report = run_differential(subject, cases);
    if let Some(d) = report.divergence {
        panic!("{}\n(artifact in {})", d.render(), crate::artifact_dir().display());
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect()
}

/// Bitwise comparison of two matrices; `Some` carries the first differing
/// element as a linear "step".
fn first_bit_mismatch(label: &str, a: &Matrix, b: &Matrix) -> Option<StepDivergence> {
    debug_assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        if x.to_bits() != y.to_bits() {
            let (r, c) = (i / a.cols(), i % a.cols());
            return Some(StepDivergence {
                step: i,
                detail: format!("{label}[{r},{c}]: {x:?} ({:#x}) vs {y:?} ({:#x})", x.to_bits(), y.to_bits()),
            });
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Kernel pair 1: naive vs. dispatched dense matmul (bit-identical claim).
// ---------------------------------------------------------------------------

/// `Matrix::matmul_naive` vs. the size-dispatched `Matrix::matmul`.
/// Dimensions straddle `MATMUL_DISPATCH_THRESHOLD` (64³ flops) so both the
/// naive fall-through and the packed-B register-tiled kernel are exercised.
pub struct MatmulNaiveVsBlocked;

/// A generated matmul case.
pub struct MatmulCase {
    /// Left operand.
    pub a: Matrix,
    /// Right operand.
    pub b: Matrix,
}

impl DiffSubject for MatmulNaiveVsBlocked {
    type Case = MatmulCase;

    fn pair(&self) -> String {
        "matmul: naive vs blocked".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> MatmulCase {
        let (m, k, n) = (1usize..80, 1usize..80, 1usize..80).generate(rng);
        let a = pvec(-2.0f64..2.0, m * k).generate(rng);
        let b = pvec(-2.0f64..2.0, k * n).generate(rng);
        MatmulCase { a: Matrix::from_vec(m, k, a).unwrap(), b: Matrix::from_vec(k, n, b).unwrap() }
    }

    fn compare(&self, case: &MatmulCase) -> Option<StepDivergence> {
        first_bit_mismatch("product", &case.a.matmul_naive(&case.b), &case.a.matmul(&case.b))
    }

    fn shrink(&self, case: &MatmulCase) -> Vec<MatmulCase> {
        // halve each dimension in turn (top-left submatrices)
        let (m, k) = case.a.shape();
        let n = case.b.cols();
        let sub = |mat: &Matrix, rows: usize, cols: usize| Matrix::from_fn(rows, cols, |r, c| mat.row(r)[c]);
        let mut out = Vec::new();
        if m > 1 {
            out.push(MatmulCase { a: sub(&case.a, m / 2, k), b: case.b.clone() });
        }
        if k > 1 {
            out.push(MatmulCase { a: sub(&case.a, m, k / 2), b: sub(&case.b, k / 2, n) });
        }
        if n > 1 {
            out.push(MatmulCase { a: case.a.clone(), b: sub(&case.b, k, n / 2) });
        }
        out
    }

    fn describe(&self, case: &MatmulCase) -> String {
        let (m, k) = case.a.shape();
        format!("A({m}×{k}) · B({k}×{})", case.b.cols())
    }
}

// ---------------------------------------------------------------------------
// Kernel pair 2: CSR SpMM vs. dense matmul (tolerance claim: the sparse
// kernel skips explicit zeros, so accumulation order differs).
// ---------------------------------------------------------------------------

/// `CsrAdj::matmul_dense` vs. `Matrix::matmul_naive` on the densified
/// operand, compared within `tol · scale`.
pub struct SpmmVsDense {
    /// Elementwise tolerance (scaled by the inner dimension).
    pub tol: f64,
}

impl Default for SpmmVsDense {
    fn default() -> Self {
        SpmmVsDense { tol: 1e-12 }
    }
}

/// A generated SpMM case.
pub struct SpmmCase {
    /// Sparse entries `(row, col, value)` of the left operand.
    pub entries: Vec<(usize, usize, f64)>,
    /// Left-operand dimension (square, adjacency-like).
    pub n: usize,
    /// Dense right operand (`n × f`).
    pub rhs: Matrix,
}

impl SpmmCase {
    fn csr(&self) -> CsrAdj {
        CsrAdj::from_entries(self.n, self.n, &self.entries)
    }

    fn dense(&self) -> Matrix {
        self.csr().to_dense()
    }
}

impl DiffSubject for SpmmVsDense {
    type Case = SpmmCase;

    fn pair(&self) -> String {
        "spmm: csr vs dense".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> SpmmCase {
        let (n, f, nnz) = (2usize..24, 1usize..9, 0usize..80).generate(rng);
        let entries: Vec<(usize, usize, f64)> = pvec((0usize..n, 0usize..n, -2.0f64..2.0), nnz).generate(rng);
        let rhs = Matrix::from_vec(n, f, pvec(-2.0f64..2.0, n * f).generate(rng)).unwrap();
        SpmmCase { entries, n, rhs }
    }

    fn compare(&self, case: &SpmmCase) -> Option<StepDivergence> {
        let sparse = case.csr().matmul_dense(&case.rhs);
        let dense = case.dense().matmul_naive(&case.rhs);
        let scale = case.n as f64;
        for (i, (s, d)) in sparse.as_slice().iter().zip(dense.as_slice()).enumerate() {
            if (s - d).abs() > self.tol * scale {
                let (r, c) = (i / sparse.cols(), i % sparse.cols());
                return Some(StepDivergence {
                    step: i,
                    detail: format!("spmm[{r},{c}]: sparse {s:?} vs dense {d:?}"),
                });
            }
        }
        None
    }

    fn shrink(&self, case: &SpmmCase) -> Vec<SpmmCase> {
        let mut out = Vec::new();
        if !case.entries.is_empty() {
            // drop the second half of the nonzeros
            let half = case.entries.len() / 2;
            out.push(SpmmCase { entries: case.entries[..half].to_vec(), n: case.n, rhs: case.rhs.clone() });
        }
        if case.rhs.cols() > 1 {
            let f = case.rhs.cols() / 2;
            out.push(SpmmCase {
                entries: case.entries.clone(),
                n: case.n,
                rhs: Matrix::from_fn(case.n, f, |r, c| case.rhs.row(r)[c]),
            });
        }
        out
    }

    fn describe(&self, case: &SpmmCase) -> String {
        format!("A({0}×{0}, {1} raw entries) · B({0}×{2})", case.n, case.entries.len(), case.rhs.cols())
    }
}

// ---------------------------------------------------------------------------
// Kernel pair 3: brute-force vs. spatial-grid ORCA neighbor search
// (bit-identical trajectory claim).
// ---------------------------------------------------------------------------

/// Two [`CrowdSimulator`]s over the same agents — `use_spatial_grid` off vs.
/// on — stepped in lockstep and compared bitwise each step.
pub struct OrcaGridVsBrute;

/// A generated crowd case.
pub struct OrcaCase {
    /// `(position, goal)` per agent, inside the room.
    pub agents: Vec<(Point2, Point2)>,
    /// Square room side length.
    pub side: f64,
    /// Steps to simulate.
    pub steps: usize,
}

impl DiffSubject for OrcaGridVsBrute {
    type Case = OrcaCase;

    fn pair(&self) -> String {
        "orca neighbors: brute vs grid".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> OrcaCase {
        let (n, steps, side) = (2usize..12, 1usize..7, 4.0f64..10.0).generate(rng);
        let coord = 0.2f64..(side - 0.2);
        let agents = pvec((coord.clone(), coord.clone(), coord.clone(), coord), n)
            .generate(rng)
            .into_iter()
            .map(|(px, py, gx, gy)| (Point2::new(px, py), Point2::new(gx, gy)))
            .collect();
        OrcaCase { agents, side, steps }
    }

    fn compare(&self, case: &OrcaCase) -> Option<StepDivergence> {
        let build = |grid: bool| {
            let agents = case.agents.iter().map(|&(p, g)| Agent::new(p, g)).collect();
            let room = Room::new(case.side, case.side);
            CrowdSimulator::new(agents, room, SimConfig { use_spatial_grid: grid, ..SimConfig::default() })
        };
        let mut brute = build(false);
        let mut grid = build(true);
        for step in 0..case.steps {
            brute.step();
            grid.step();
            for (i, (a, b)) in brute.positions().iter().zip(grid.positions()).enumerate() {
                if a.x.to_bits() != b.x.to_bits() || a.y.to_bits() != b.y.to_bits() {
                    return Some(StepDivergence {
                        step,
                        detail: format!(
                            "agent {i} at step {step}: brute ({:?}, {:?}) vs grid ({:?}, {:?})",
                            a.x, a.y, b.x, b.y
                        ),
                    });
                }
            }
        }
        None
    }

    fn shrink(&self, case: &OrcaCase) -> Vec<OrcaCase> {
        let mut out = Vec::new();
        if case.agents.len() > 2 {
            let half = (case.agents.len() / 2).max(2);
            out.push(OrcaCase { agents: case.agents[..half].to_vec(), side: case.side, steps: case.steps });
        }
        if case.steps > 1 {
            out.push(OrcaCase { agents: case.agents.clone(), side: case.side, steps: case.steps / 2 });
        }
        out
    }

    fn describe(&self, case: &OrcaCase) -> String {
        format!("{} agents, {} steps, {:.2}m room", case.agents.len(), case.steps, case.side)
    }
}

// ---------------------------------------------------------------------------
// Kernel pair 4: serial vs. parallel runner (identical-tables claim).
// ---------------------------------------------------------------------------

/// `xr_eval::par_map_indexed_with(1, …)` vs. `(workers, …)` over a workload
/// of independent seeded cells (each cell: a seeded mini matmul reduced to
/// one f64), compared bitwise per cell — the same per-cell-seed discipline
/// the comparison tables rely on.
pub struct SerialVsParallelRunner {
    /// Worker count for the parallel side.
    pub workers: usize,
}

impl Default for SerialVsParallelRunner {
    fn default() -> Self {
        SerialVsParallelRunner { workers: 8 }
    }
}

/// A generated parallel workload: one seed per independent cell.
pub struct ParCase {
    /// Per-cell seeds.
    pub cell_seeds: Vec<u64>,
}

/// A deterministic, order-sensitive per-cell computation: seeded matrices,
/// a product, a reduction.
fn par_cell(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::from_vec(6, 6, pvec(-1.0f64..1.0, 36).generate(&mut rng)).unwrap();
    let b = Matrix::from_vec(6, 6, pvec(-1.0f64..1.0, 36).generate(&mut rng)).unwrap();
    a.matmul(&b).as_slice().iter().enumerate().map(|(i, v)| v * (i as f64 + 0.5)).sum()
}

impl DiffSubject for SerialVsParallelRunner {
    type Case = ParCase;

    fn pair(&self) -> String {
        format!("par runner: 1 vs {} workers", self.workers)
    }

    fn generate(&self, rng: &mut StdRng) -> ParCase {
        ParCase { cell_seeds: pvec(0u64..u64::MAX, 1usize..33).generate(rng) }
    }

    fn compare(&self, case: &ParCase) -> Option<StepDivergence> {
        let n = case.cell_seeds.len();
        let serial = xr_eval::par_map_indexed_with(1, n, |i| par_cell(case.cell_seeds[i]));
        let parallel = xr_eval::par_map_indexed_with(self.workers, n, |i| par_cell(case.cell_seeds[i]));
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            if s.to_bits() != p.to_bits() {
                return Some(StepDivergence {
                    step: i,
                    detail: format!("cell {i}: serial {s:?} vs {} workers {p:?}", self.workers),
                });
            }
        }
        None
    }

    fn shrink(&self, case: &ParCase) -> Vec<ParCase> {
        if case.cell_seeds.len() > 1 {
            vec![ParCase { cell_seeds: case.cell_seeds[..case.cell_seeds.len() / 2].to_vec() }]
        } else {
            Vec::new()
        }
    }

    fn describe(&self, case: &ParCase) -> String {
        format!("{} cells", case.cell_seeds.len())
    }
}

// ---------------------------------------------------------------------------
// Recommender pair: sparse vs. dense-kernel POSHGNN episodes.
// ---------------------------------------------------------------------------

/// Two identically seeded [`poshgnn::PoshGnn`] models — CSR kernels vs.
/// `dense_kernels` — run over the same generated episode; soft outputs are
/// compared within `tol` and thresholded decisions exactly, step by step.
pub struct SparseVsDensePoshGnn {
    /// Elementwise tolerance on `r_t` (decisions must match exactly).
    pub tol: f64,
}

impl Default for SparseVsDensePoshGnn {
    fn default() -> Self {
        SparseVsDensePoshGnn { tol: 1e-9 }
    }
}

/// A generated POSHGNN episode scenario.
pub struct PoshCase {
    /// Dataset seed.
    pub dataset_seed: u64,
    /// Scenario sampling config.
    pub scenario: ScenarioConfig,
    /// Target user.
    pub target: usize,
}

/// Draws one POSHGNN episode case (shared by every POSHGNN-level subject).
fn generate_posh_case(rng: &mut StdRng) -> PoshCase {
    let (n, steps, seeds) = (6usize..14, 2usize..6, (0u64..1_000_000, 0u64..1_000_000)).generate(rng);
    let target = (0usize..n).generate(rng);
    PoshCase {
        dataset_seed: seeds.0,
        scenario: ScenarioConfig {
            n_participants: n,
            vr_fraction: 0.5,
            time_steps: steps,
            room_side: 6.0,
            body_radius: 0.2,
            seed: seeds.1,
        },
        target,
    }
}

/// Shrinks a POSHGNN episode case (halve steps, then halve participants).
fn shrink_posh_case(case: &PoshCase) -> Vec<PoshCase> {
    let mut out = Vec::new();
    if case.scenario.time_steps > 2 {
        let mut scenario = case.scenario;
        scenario.time_steps /= 2;
        out.push(PoshCase { dataset_seed: case.dataset_seed, scenario, target: case.target });
    }
    if case.scenario.n_participants > 6 {
        let mut scenario = case.scenario;
        scenario.n_participants = (scenario.n_participants / 2).max(6);
        out.push(PoshCase {
            dataset_seed: case.dataset_seed,
            scenario,
            target: case.target.min(scenario.n_participants - 1),
        });
    }
    out
}

fn describe_posh_case(case: &PoshCase) -> String {
    format!(
        "Hubs seed {}, N={}, T={}, target {}",
        case.dataset_seed, case.scenario.n_participants, case.scenario.time_steps, case.target
    )
}

/// Materializes the episode context of a [`PoshCase`].
fn posh_context(case: &PoshCase) -> poshgnn::TargetContext {
    let dataset = Dataset::generate(DatasetKind::Hubs, case.dataset_seed);
    let scenario = dataset.sample_scenario(&case.scenario);
    poshgnn::TargetContext::new(&scenario, case.target, 0.5)
}

impl DiffSubject for SparseVsDensePoshGnn {
    type Case = PoshCase;

    fn pair(&self) -> String {
        "poshgnn: sparse vs dense kernels".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> PoshCase {
        generate_posh_case(rng)
    }

    fn compare(&self, case: &PoshCase) -> Option<StepDivergence> {
        use poshgnn::recommender::threshold_decision;
        use poshgnn::{AfterRecommender, PoshGnn, PoshGnnConfig, StepView};

        let ctx = posh_context(case);
        let mut sparse = PoshGnn::new(PoshGnnConfig::default());
        let mut dense = PoshGnn::new(PoshGnnConfig { dense_kernels: true, ..Default::default() });
        sparse.begin_episode(&StepView::new(&ctx, 0));
        dense.begin_episode(&StepView::new(&ctx, 0));
        for t in 0..=ctx.t_max() {
            let rs = sparse.soft_recommend(&ctx, t);
            let rd = dense.soft_recommend(&ctx, t);
            for (w, (s, d)) in rs.iter().zip(&rd).enumerate() {
                if (s - d).abs() > self.tol {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!("r_{t}[{w}]: sparse {s:?} vs dense {d:?}"),
                    });
                }
            }
            let threshold = sparse.config().threshold;
            let ds = threshold_decision(&rs, ctx.target, threshold);
            let dd = threshold_decision(&rd, ctx.target, threshold);
            if ds != dd {
                return Some(StepDivergence {
                    step: t,
                    detail: format!("decisions at t={t}: sparse {ds:?} vs dense {dd:?}"),
                });
            }
        }
        None
    }

    fn shrink(&self, case: &PoshCase) -> Vec<PoshCase> {
        shrink_posh_case(case)
    }

    fn describe(&self, case: &PoshCase) -> String {
        describe_posh_case(case)
    }
}

// ---------------------------------------------------------------------------
// Serving pair: f64 tape inference vs. the f32 SIMD serving path.
// ---------------------------------------------------------------------------

/// Two identically seeded [`poshgnn::PoshGnn`] models — the f64 tape path vs.
/// the f32 SIMD serving path (`serve_f32`, set explicitly so the subject is
/// meaningful under any `AFTER_SERVE_F32` environment) — run over the same
/// generated episode.
///
/// Unlike the bit-identical kernel pairs, precision genuinely differs here,
/// so the oracle is behavioral (DESIGN.md §9): per step, soft scores must
/// agree elementwise within `tol` AND the top-k rankings must overlap by at
/// least `min_top_k_overlap` (via [`crate::metrics::top_k_overlap`]).
pub struct ServeF32VsF64 {
    /// Elementwise tolerance on the soft scores `r_t`.
    pub tol: f64,
    /// Minimum top-k overlap per step, with `k = min(5, n − 1)`.
    pub min_top_k_overlap: f64,
}

impl Default for ServeF32VsF64 {
    fn default() -> Self {
        ServeF32VsF64 { tol: 1e-3, min_top_k_overlap: 0.6 }
    }
}

impl DiffSubject for ServeF32VsF64 {
    type Case = PoshCase;

    fn pair(&self) -> String {
        "poshgnn: f64 inference vs f32 SIMD serving".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> PoshCase {
        generate_posh_case(rng)
    }

    fn compare(&self, case: &PoshCase) -> Option<StepDivergence> {
        use poshgnn::{AfterRecommender, PoshGnn, PoshGnnConfig, StepView};

        let ctx = posh_context(case);
        let mut m64 = PoshGnn::new(PoshGnnConfig { serve_f32: false, ..Default::default() });
        let mut m32 = PoshGnn::new(PoshGnnConfig { serve_f32: true, ..Default::default() });
        m64.begin_episode(&StepView::new(&ctx, 0));
        m32.begin_episode(&StepView::new(&ctx, 0));
        let k = 5.min(ctx.n.saturating_sub(1));
        for t in 0..=ctx.t_max() {
            let s64 = m64.soft_recommend(&ctx, t);
            let s32 = m32.soft_recommend(&ctx, t);
            for (w, (a, b)) in s64.iter().zip(&s32).enumerate() {
                if (a - b).abs() > self.tol {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!("r_{t}[{w}]: f64 {a:?} vs f32 {b:?}"),
                    });
                }
            }
            let overlap = crate::metrics::top_k_overlap(&s64, &s32, k);
            if overlap < self.min_top_k_overlap {
                return Some(StepDivergence {
                    step: t,
                    detail: format!("top-{k} overlap at t={t}: {overlap:.2} < {:.2}", self.min_top_k_overlap),
                });
            }
        }
        None
    }

    fn shrink(&self, case: &PoshCase) -> Vec<PoshCase> {
        shrink_posh_case(case)
    }

    fn describe(&self, case: &PoshCase) -> String {
        describe_posh_case(case)
    }
}

// ---------------------------------------------------------------------------
// Hot-path pair 1: cached-MIA vs. fresh-MIA episode loss (bit-identical).
// ---------------------------------------------------------------------------

/// The same identically seeded POSHGNN differentiated through
/// [`poshgnn::PoshGnn::episode_loss_cached`] (one precomputed
/// `Mia::compute_episode` slab) vs. [`poshgnn::PoshGnn::episode_loss`]
/// (MIA recomputed at every step). MIA is parameter-free, so the loss scalar
/// and every parameter gradient must match bit for bit.
pub struct CachedVsFreshMia;

impl DiffSubject for CachedVsFreshMia {
    type Case = PoshCase;

    fn pair(&self) -> String {
        "poshgnn: cached vs fresh MIA".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> PoshCase {
        generate_posh_case(rng)
    }

    fn compare(&self, case: &PoshCase) -> Option<StepDivergence> {
        use poshgnn::{Mia, PoshGnn, PoshGnnConfig};
        use xr_tensor::Tape;

        let ctx = posh_context(case);
        let cfg = PoshGnnConfig { fresh_mia: false, fresh_tape: false, ..Default::default() };

        let mut fresh = PoshGnn::new(cfg);
        let tape_f = Tape::new();
        let loss_f = fresh.episode_loss(&tape_f, &ctx);
        let lf = loss_f.scalar();
        loss_f.backward(fresh.params_mut());

        let mut cached = PoshGnn::new(cfg);
        let slab = Mia.compute_episode(&ctx);
        let tape_c = Tape::new();
        let loss_c = cached.episode_loss_cached(&tape_c, &ctx, &slab);
        let lc = loss_c.scalar();
        loss_c.backward(cached.params_mut());

        if lf.to_bits() != lc.to_bits() {
            return Some(StepDivergence {
                step: 0,
                detail: format!("episode loss: fresh {lf:?} vs cached {lc:?}"),
            });
        }
        for id in fresh.params().ids() {
            let name = fresh.params().name(id).to_string();
            if let Some(d) = first_bit_mismatch(
                &format!("grad[{name}]"),
                fresh.params().grad(id),
                cached.params().grad(id),
            ) {
                return Some(d);
            }
        }
        None
    }

    fn shrink(&self, case: &PoshCase) -> Vec<PoshCase> {
        shrink_posh_case(case)
    }

    fn describe(&self, case: &PoshCase) -> String {
        describe_posh_case(case)
    }
}

// ---------------------------------------------------------------------------
// Hot-path pair 2: pooled-tape vs. fresh-tape gradients (bit-identical).
// ---------------------------------------------------------------------------

/// Two identically seeded POSHGNNs differentiated over the same episode
/// twice: one builds a fresh `Tape` per pass, the other resets a single
/// arena tape so the second pass runs entirely on recycled pooled buffers.
/// Losses and parameter gradients of both passes must match bit for bit —
/// the full-overwrite contract on pooled buffers makes recycling invisible.
pub struct PooledVsFreshTape;

impl DiffSubject for PooledVsFreshTape {
    type Case = PoshCase;

    fn pair(&self) -> String {
        "tape: pooled arena vs fresh".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> PoshCase {
        generate_posh_case(rng)
    }

    fn compare(&self, case: &PoshCase) -> Option<StepDivergence> {
        use poshgnn::{PoshGnn, PoshGnnConfig};
        use xr_tensor::{Matrix, Tape};

        let ctx = posh_context(case);
        let cfg = PoshGnnConfig { fresh_mia: false, fresh_tape: false, ..Default::default() };
        let passes = 2;

        // (loss, gradients) per pass; `pooled` reuses one reset arena tape.
        let run = |pooled: bool| -> Vec<(f64, Vec<Matrix>)> {
            let mut model = PoshGnn::new(cfg);
            let arena = Tape::new();
            (0..passes)
                .map(|_| {
                    let fresh_tape;
                    let tape = if pooled {
                        arena.reset();
                        &arena
                    } else {
                        fresh_tape = Tape::new();
                        &fresh_tape
                    };
                    let loss = model.episode_loss(tape, &ctx);
                    let l = loss.scalar();
                    loss.backward(model.params_mut());
                    let grads: Vec<Matrix> =
                        model.params().ids().map(|id| model.params().grad(id).clone()).collect();
                    model.params_mut().zero_grads();
                    (l, grads)
                })
                .collect()
        };

        let fresh = run(false);
        let pooled = run(true);
        for (pass, ((lf, gf), (lp, gp))) in fresh.iter().zip(&pooled).enumerate() {
            if lf.to_bits() != lp.to_bits() {
                return Some(StepDivergence {
                    step: pass,
                    detail: format!("pass {pass} loss: fresh {lf:?} vs pooled {lp:?}"),
                });
            }
            for (i, (a, b)) in gf.iter().zip(gp).enumerate() {
                if let Some(mut d) = first_bit_mismatch(&format!("pass {pass} grad #{i}"), a, b) {
                    d.step = pass;
                    return Some(d);
                }
            }
        }
        None
    }

    fn shrink(&self, case: &PoshCase) -> Vec<PoshCase> {
        shrink_posh_case(case)
    }

    fn describe(&self, case: &PoshCase) -> String {
        describe_posh_case(case)
    }
}

// ---------------------------------------------------------------------------
// Session pair: streaming scene engine vs. legacy precompute (bit-identical).
// ---------------------------------------------------------------------------

/// The same episode context built twice: once through the streaming
/// [`xr_session::SceneEngine`] (`AFTER_STREAMING=1`, the default — shared
/// per-tick scene state, sweep-built occlusion graphs) and once through the
/// legacy per-target precompute (`AFTER_STREAMING=0`). Every stored field —
/// occlusion graphs including adjacency order, distance rows, candidate
/// masks — must match bit for bit, and so must the decision stream of an
/// identically seeded untrained POSHGNN driven over both contexts.
pub struct StreamingVsPrecomputed;

impl DiffSubject for StreamingVsPrecomputed {
    type Case = PoshCase;

    fn pair(&self) -> String {
        "session: streaming engine vs precomputed contexts".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> PoshCase {
        generate_posh_case(rng)
    }

    fn compare(&self, case: &PoshCase) -> Option<StepDivergence> {
        use poshgnn::{AfterRecommender, PoshGnn, PoshGnnConfig, StepView};

        let streaming = crate::golden::with_streaming(true, || posh_context(case));
        let legacy = crate::golden::with_streaming(false, || posh_context(case));

        for t in 0..=legacy.t_max() {
            if streaming.occlusion[t] != legacy.occlusion[t] {
                return Some(StepDivergence {
                    step: t,
                    detail: format!(
                        "occlusion graph at t={t}: streaming {:?} vs legacy {:?}",
                        streaming.occlusion[t], legacy.occlusion[t]
                    ),
                });
            }
            for w in 0..legacy.n {
                let (s, l) = (streaming.distances[t][w], legacy.distances[t][w]);
                if s.to_bits() != l.to_bits() {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!("distance[{w}] at t={t}: streaming {s:?} vs legacy {l:?}"),
                    });
                }
            }
            if streaming.candidate_mask[t] != legacy.candidate_mask[t] {
                return Some(StepDivergence {
                    step: t,
                    detail: format!(
                        "candidate mask at t={t}: streaming {:?} vs legacy {:?}",
                        streaming.candidate_mask[t], legacy.candidate_mask[t]
                    ),
                });
            }
        }

        // end-to-end: an identically seeded model must emit the same soft
        // stream over both contexts
        let mut ms = PoshGnn::new(PoshGnnConfig::default());
        let mut ml = PoshGnn::new(PoshGnnConfig::default());
        ms.begin_episode(&StepView::new(&streaming, 0));
        ml.begin_episode(&StepView::new(&legacy, 0));
        for t in 0..=legacy.t_max() {
            let rs = ms.soft_recommend(&streaming, t);
            let rl = ml.soft_recommend(&legacy, t);
            for (w, (s, l)) in rs.iter().zip(&rl).enumerate() {
                if s.to_bits() != l.to_bits() {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!("r_{t}[{w}]: streaming {s:?} vs legacy {l:?}"),
                    });
                }
            }
        }
        None
    }

    fn shrink(&self, case: &PoshCase) -> Vec<PoshCase> {
        shrink_posh_case(case)
    }

    fn describe(&self, case: &PoshCase) -> String {
        describe_posh_case(case)
    }
}

// ---------------------------------------------------------------------------
// Serving pair: multi-room scheduler vs. sequential engines (bit-identical).
// ---------------------------------------------------------------------------

/// One room's generated serving workload.
#[derive(Debug, Clone)]
pub struct RoomScenario {
    /// Participant count (frame width).
    pub n: usize,
    /// Registered viewers (all `< n`).
    pub viewers: Vec<usize>,
    /// Recommendation size.
    pub top_k: usize,
    /// MR participation mask.
    pub mr_mask: Vec<bool>,
    /// Positions per tick, `frames[t]` of length `n`.
    pub frames: Vec<Vec<Point2>>,
}

/// A generated multi-room workload: several rooms advanced in lockstep (one
/// frame per room per pump round) on a scheduler with a fixed worker count.
#[derive(Debug, Clone)]
pub struct MultiRoomCase {
    /// The rooms (all share the same tick count).
    pub rooms: Vec<RoomScenario>,
    /// Scheduler worker count for this case.
    pub workers: usize,
}

/// The sequential-reference decision rule, payload-agnostic: dense views
/// decide with [`xr_serve::decide_topk_f64`]; pruned views (env
/// `AFTER_PRUNE_K` legs) decide on their shortlist — exactly the branch the
/// room scheduler takes.
fn decide_for_view(view: &xr_session::TargetView, n: usize, k: usize) -> Vec<bool> {
    if let Some(cs) = view.candidates() {
        let mut out = vec![false; n];
        for w in cs.decide_topk(k) {
            out[w as usize] = true;
        }
        out
    } else {
        xr_serve::decide_topk_f64(view.candidate_mask(), view.distances(), k)
    }
}

/// The multi-room scheduler ([`xr_serve::RoomServer`], no SLO budget so the
/// degradation ladder and shedding stay inert) vs. the obvious sequential
/// reference: one bare [`xr_session::SceneEngine`] per room fed the same
/// frames in order, decided with the same [`xr_serve::decide_topk_f64`]
/// rule. Every room's decision stream, distance rows (bitwise), occlusion
/// graphs, and candidate masks must be identical regardless of how the
/// worker pool interleaved the rooms.
pub struct MultiRoomVsSequential;

impl DiffSubject for MultiRoomVsSequential {
    type Case = MultiRoomCase;

    fn pair(&self) -> String {
        "serve: multi-room scheduler vs sequential engines".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> MultiRoomCase {
        let (room_count, ticks, workers) = (1usize..6, 2usize..6, 1usize..9).generate(rng);
        let rooms = (0..room_count)
            .map(|_| {
                let n = (4usize..10).generate(rng);
                let viewer_count = (1usize..4).generate(rng).min(n);
                let mut viewers: Vec<usize> = (0..viewer_count).map(|_| (0usize..n).generate(rng)).collect();
                viewers.sort_unstable();
                viewers.dedup();
                let top_k = (1usize..5).generate(rng);
                let mr_mask: Vec<bool> = (0..n).map(|_| (0u32..2).generate(rng) == 1).collect();
                let frames = (0..ticks)
                    .map(|_| {
                        (0..n)
                            .map(|_| {
                                let (x, y) = (-4.0f64..4.0, -4.0f64..4.0).generate(rng);
                                Point2::new(x, y)
                            })
                            .collect()
                    })
                    .collect();
                RoomScenario { n, viewers, top_k, mr_mask, frames }
            })
            .collect();
        MultiRoomCase { rooms, workers }
    }

    fn compare(&self, case: &MultiRoomCase) -> Option<StepDivergence> {
        use xr_serve::{RoomConfig, RoomServer, ServerConfig};
        use xr_session::{Frame, SceneConfig, SceneEngine};

        let scene_of = |room: &RoomScenario| SceneConfig {
            body_radius: 0.2,
            mr_mask: room.mr_mask.clone(),
            room_diagonal: 8.0 * std::f64::consts::SQRT_2,
        };
        let ticks = case.rooms.first().map_or(0, |r| r.frames.len());

        // scheduler side: admit every room, advance in lockstep
        let mut server = RoomServer::new(ServerConfig {
            max_rooms: case.rooms.len(),
            workers: case.workers,
            slo: None,
            ..ServerConfig::default()
        });
        let ids: Vec<_> = case
            .rooms
            .iter()
            .map(|room| {
                let mut cfg = RoomConfig::new(room.n, scene_of(room), room.viewers.clone());
                cfg.top_k = room.top_k;
                cfg.retain_states = None; // keep history for the bitwise sweep
                server.admit(cfg).expect("admission of a generated room")
            })
            .collect();
        let mut scheduled: Vec<Vec<xr_serve::Decision>> = vec![Vec::new(); case.rooms.len()];
        for t in 0..ticks {
            for (room, id) in case.rooms.iter().zip(&ids) {
                server.enqueue(*id, Frame::new(room.frames[t].clone()));
            }
            let report = server.pump();
            for drain in report.rooms {
                let slot = ids.iter().position(|id| *id == drain.room).unwrap();
                scheduled[slot].extend(drain.decisions);
            }
        }

        // sequential reference: bare engines, same frames, same decision rule
        for (slot, room) in case.rooms.iter().enumerate() {
            let mut engine = SceneEngine::new(room.n, scene_of(room), &room.viewers);
            for frame in &room.frames {
                engine.push(Frame::new(frame.clone()));
            }
            let viewers = engine.viewers().to_vec();
            let got = &scheduled[slot];
            if got.len() != ticks {
                return Some(StepDivergence {
                    step: slot,
                    detail: format!(
                        "room {slot}: scheduler produced {} decisions for {ticks} frames",
                        got.len()
                    ),
                });
            }
            for (t, decision) in got.iter().enumerate() {
                if decision.seq != t as u64 || decision.level != xr_serve::ServeLevel::Full {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!(
                            "room {slot} t={t}: decision seq {} level {:?} (expected seq {t}, Full)",
                            decision.seq, decision.level
                        ),
                    });
                }
                for (vi, &viewer) in viewers.iter().enumerate() {
                    let view = engine.view(viewer, t);
                    let expect = decide_for_view(&view, room.n, room.top_k);
                    if decision.per_viewer[vi] != expect {
                        return Some(StepDivergence {
                            step: t,
                            detail: format!(
                                "room {slot} viewer {viewer} t={t}: scheduler {:?} vs sequential {expect:?}",
                                decision.per_viewer[vi]
                            ),
                        });
                    }
                    // the retained engine state itself must be bit-identical
                    let diverged = server.with_room(ids[slot], |served| {
                        let sv = served.engine().view(viewer, t);
                        // pruned engines (env AFTER_PRUNE_K legs) retain
                        // shortlists instead of dense rows — compare those
                        if let (Some(a), Some(b)) = (sv.candidates(), view.candidates()) {
                            if a != b {
                                return Some(format!(
                                    "room {slot} viewer {viewer} shortlist at t={t}: scheduler {a:?} vs sequential {b:?}"
                                ));
                            }
                            return None;
                        }
                        for (w, (a, b)) in sv.distances().iter().zip(view.distances()).enumerate() {
                            if a.to_bits() != b.to_bits() {
                                return Some(format!(
                                    "room {slot} viewer {viewer} distance[{w}] at t={t}: scheduler {a:?} vs sequential {b:?}"
                                ));
                            }
                        }
                        if sv.occlusion() != view.occlusion() {
                            return Some(format!(
                                "room {slot} viewer {viewer} occlusion at t={t}: scheduler {:?} vs sequential {:?}",
                                sv.occlusion(),
                                view.occlusion()
                            ));
                        }
                        if sv.candidate_mask() != view.candidate_mask() {
                            return Some(format!(
                                "room {slot} viewer {viewer} candidate mask at t={t}: scheduler {:?} vs sequential {:?}",
                                sv.candidate_mask(),
                                view.candidate_mask()
                            ));
                        }
                        None
                    });
                    if let Some(detail) = diverged.flatten() {
                        return Some(StepDivergence { step: t, detail });
                    }
                }
            }
        }
        None
    }

    fn shrink(&self, case: &MultiRoomCase) -> Vec<MultiRoomCase> {
        let mut out = Vec::new();
        if case.rooms.len() > 1 {
            out.push(MultiRoomCase {
                rooms: case.rooms[..case.rooms.len() / 2].to_vec(),
                workers: case.workers,
            });
        }
        let ticks = case.rooms.first().map_or(0, |r| r.frames.len());
        if ticks > 1 {
            out.push(MultiRoomCase {
                rooms: case
                    .rooms
                    .iter()
                    .map(|r| RoomScenario { frames: r.frames[..ticks / 2].to_vec(), ..r.clone() })
                    .collect(),
                workers: case.workers,
            });
        }
        if case.workers > 1 {
            out.push(MultiRoomCase { rooms: case.rooms.clone(), workers: 1 });
        }
        out
    }

    fn describe(&self, case: &MultiRoomCase) -> String {
        format!(
            "{} rooms (n={:?}), {} ticks, {} workers",
            case.rooms.len(),
            case.rooms.iter().map(|r| r.n).collect::<Vec<_>>(),
            case.rooms.first().map_or(0, |r| r.frames.len()),
            case.workers
        )
    }
}

// ---------------------------------------------------------------------------
// Session pair: incremental O(Δ) maintenance vs. from-scratch (bit-identical).
// ---------------------------------------------------------------------------

/// A churn-heavy scene-maintenance workload: bounded random walks spiked
/// with teleports, plus join/leave churn modeled as teleports to and from a
/// shared lobby point far outside the room (the engine keeps a fixed frame
/// width, so "absent" users park — coincident and stationary — in the
/// lobby, exercising the degenerate-arc and sort-tie paths).
#[derive(Debug, Clone)]
pub struct IncrementalSceneCase {
    /// Participant count (fixed frame width; churn is positional).
    pub n: usize,
    /// Registered viewers (unique, ascending, all `< n`).
    pub viewers: Vec<usize>,
    /// Recommendation size for the decision stream.
    pub top_k: usize,
    /// MR participation mask.
    pub mr_mask: Vec<bool>,
    /// State retention handed to both engines (`None` = unbounded).
    pub retention: Option<usize>,
    /// Positions per tick, `frames[t]` of length `n`.
    pub frames: Vec<Vec<Point2>>,
}

/// The incremental scene engine (`set_incremental(true)`: delta distance
/// rows, warm sweep candidates, retained-edge reuse) vs. the from-scratch
/// oracle (`set_incremental(false)`) on the same frame stream. Incremental
/// maintenance is an optimization layer, not an approximation: every tick's
/// distance matrix (bitwise), per-viewer occlusion graph (`Eq`, including
/// adjacency order), candidate mask, and [`xr_serve::decide_topk_f64`]
/// decision stream must be identical across teleports, lobby churn, and
/// tight retention windows.
pub struct IncrementalVsFromScratch;

impl DiffSubject for IncrementalVsFromScratch {
    type Case = IncrementalSceneCase;

    fn pair(&self) -> String {
        "session: incremental maintenance vs from-scratch".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> IncrementalSceneCase {
        let (n, ticks) = (4usize..10, 3usize..9).generate(rng);
        let viewer_count = (1usize..4).generate(rng).min(n);
        let mut viewers: Vec<usize> = (0..viewer_count).map(|_| (0usize..n).generate(rng)).collect();
        viewers.sort_unstable();
        viewers.dedup();
        let top_k = (1usize..5).generate(rng);
        let mr_mask: Vec<bool> = (0..n).map(|_| (0u32..2).generate(rng) == 1).collect();
        let retention = match (0u32..3).generate(rng) {
            0 => None,
            1 => Some(1),
            _ => Some(2),
        };
        // motion regime per case: mostly-coherent walks with occasional
        // teleports and lobby churn, biased so some cases are near-static
        // (max warm reuse) and some are storms (constant rebuilds)
        let (teleport_prob, churn_prob) = (0.0f64..0.35, 0.0f64..0.35).generate(rng);
        let step = (0.02f64..0.8).generate(rng);
        let lobby = Point2::new(20.0, 20.0);
        let in_room_pos = |rng: &mut StdRng| -> Point2 {
            Point2::new((-4.0f64..4.0).generate(rng), (-4.0f64..4.0).generate(rng))
        };
        let mut in_room: Vec<bool> = (0..n).map(|_| (0u32..4).generate(rng) != 0).collect();
        let mut current: Vec<Point2> =
            (0..n).map(|i| if in_room[i] { in_room_pos(rng) } else { lobby }).collect();
        let mut frames = vec![current.clone()];
        for _ in 1..ticks {
            for i in 0..n {
                if (0.0f64..1.0).generate(rng) < churn_prob {
                    // join/leave churn: swap sides of the lobby door
                    in_room[i] = !in_room[i];
                    current[i] = if in_room[i] { in_room_pos(rng) } else { lobby };
                } else if !in_room[i] {
                    // parked in the lobby: bit-identical (stationary)
                } else if (0.0f64..1.0).generate(rng) < teleport_prob {
                    current[i] = in_room_pos(rng);
                } else {
                    let (dx, dy) = (-step..step, -step..step).generate(rng);
                    current[i] = Point2::new(
                        (current[i].x + dx).clamp(-4.0, 4.0),
                        (current[i].y + dy).clamp(-4.0, 4.0),
                    );
                }
            }
            frames.push(current.clone());
        }
        IncrementalSceneCase { n, viewers, top_k, mr_mask, retention, frames }
    }

    fn compare(&self, case: &IncrementalSceneCase) -> Option<StepDivergence> {
        use xr_session::{Frame, SceneConfig, SceneEngine};

        let scene = SceneConfig {
            body_radius: 0.2,
            mr_mask: case.mr_mask.clone(),
            room_diagonal: 8.0 * std::f64::consts::SQRT_2,
        };
        let build = |incremental: bool| {
            let mut engine = SceneEngine::new(case.n, scene.clone(), &case.viewers);
            engine.set_incremental(incremental);
            engine.set_state_retention(case.retention);
            // this subject pins the *dense* incremental path and sweeps dense
            // distance rows, so it opts out of env-driven pruning; the pruned
            // path has its own subject (PrunedVsFull)
            engine.set_prune_k(0);
            engine
        };
        let mut inc = build(true);
        let mut oracle = build(false);

        for (t, frame) in case.frames.iter().enumerate() {
            inc.push(Frame::new(frame.clone()));
            oracle.push(Frame::new(frame.clone()));
            // compare the freshly pushed tick — always retained, even at
            // retention=1 (the satellite regression this subject pins)
            let (si, so) = (inc.state(t), oracle.state(t));
            for (i, (p, q)) in si.positions().iter().zip(so.positions()).enumerate() {
                if p.x.to_bits() != q.x.to_bits() || p.y.to_bits() != q.y.to_bits() {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!("position[{i}] at t={t}: incremental {p:?} vs scratch {q:?}"),
                    });
                }
            }
            for i in 0..case.n {
                for (j, (a, b)) in si.distance_row(i).iter().zip(so.distance_row(i)).enumerate() {
                    if a.to_bits() != b.to_bits() {
                        return Some(StepDivergence {
                            step: t,
                            detail: format!(
                                "distance[{i}][{j}] at t={t}: incremental {a:?} vs scratch {b:?}"
                            ),
                        });
                    }
                }
            }
            for &viewer in &case.viewers {
                let (vi, vo) = (inc.view(viewer, t), oracle.view(viewer, t));
                if vi.occlusion() != vo.occlusion() {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!(
                            "viewer {viewer} occlusion at t={t}: incremental {:?} vs scratch {:?}",
                            vi.occlusion(),
                            vo.occlusion()
                        ),
                    });
                }
                if vi.candidate_mask() != vo.candidate_mask() {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!(
                            "viewer {viewer} candidate mask at t={t}: incremental {:?} vs scratch {:?}",
                            vi.candidate_mask(),
                            vo.candidate_mask()
                        ),
                    });
                }
                let di = xr_serve::decide_topk_f64(vi.candidate_mask(), vi.distances(), case.top_k);
                let ds = xr_serve::decide_topk_f64(vo.candidate_mask(), vo.distances(), case.top_k);
                if di != ds {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!(
                            "viewer {viewer} decision at t={t}: incremental {di:?} vs scratch {ds:?}"
                        ),
                    });
                }
            }
        }
        None
    }

    fn shrink(&self, case: &IncrementalSceneCase) -> Vec<IncrementalSceneCase> {
        let mut out = Vec::new();
        if case.frames.len() > 2 {
            out.push(IncrementalSceneCase {
                frames: case.frames[..case.frames.len() / 2].to_vec(),
                ..case.clone()
            });
            out.push(IncrementalSceneCase { frames: case.frames[1..].to_vec(), ..case.clone() });
        }
        if case.n > 2 {
            let n = case.n / 2;
            let mut viewers: Vec<usize> = case.viewers.iter().copied().filter(|&v| v < n).collect();
            if viewers.is_empty() {
                viewers.push(0);
            }
            out.push(IncrementalSceneCase {
                n,
                viewers,
                top_k: case.top_k,
                mr_mask: case.mr_mask[..n].to_vec(),
                retention: case.retention,
                frames: case.frames.iter().map(|f| f[..n].to_vec()).collect(),
            });
        }
        if case.retention.is_some() {
            out.push(IncrementalSceneCase { retention: None, ..case.clone() });
        }
        out
    }

    fn describe(&self, case: &IncrementalSceneCase) -> String {
        format!(
            "n={} users, {} ticks, viewers {:?}, top_k={}, retention {:?}",
            case.n,
            case.frames.len(),
            case.viewers,
            case.top_k,
            case.retention
        )
    }
}

// ---------------------------------------------------------------------------
// Session pair: K-candidate pruned maintenance vs. full-N scene state.
// ---------------------------------------------------------------------------

/// A crowd-style scene workload for the pruning contract: bounded walks with
/// lobby churn and teleports, compared at two shortlist sizes.
#[derive(Debug, Clone)]
pub struct PrunedSceneCase {
    /// Participant count (fixed frame width).
    pub n: usize,
    /// Registered viewers (unique, ascending, all `< n`).
    pub viewers: Vec<usize>,
    /// Recommendation size for the decision stream.
    pub top_k: usize,
    /// A *small* shortlist size (`< n − 1`) for the serving-K agreement leg.
    pub serve_k: usize,
    /// MR participation mask.
    pub mr_mask: Vec<bool>,
    /// Whether the engines run incremental maintenance.
    pub incremental: bool,
    /// Positions per tick, `frames[t]` of length `n`.
    pub frames: Vec<Vec<Point2>>,
}

/// The K-candidate pruned scene engine (`set_prune_k(K)`: per-viewer
/// shortlists from the hierarchical spatial index, no dense N×N state) vs.
/// the full-N engine (`set_prune_k(0)`) on the same frame stream. Two legs:
///
/// * **Full K** (`K = N − 1`): pruning is exact — shortlist membership is
///   complete, member distances / mask bits are bitwise equal to the dense
///   rows, restricted occlusion edges equal the full edge set, and the
///   top-k decision stream is identical.
/// * **Serving K** (`K < N − 1`): pruning is an approximation whose ranking
///   must still be faithful — the mean top-k overlap between the full and
///   pruned nearest-candidate rankings, at the prefix both sides can serve
///   (`k = min(5, visible candidates on either side)`), must stay at or
///   above `min_top_k_agreement` (0.9). Because every mask-true candidate
///   nearer than the shortlist boundary is a member (the K-nearest closure),
///   this prefix agrees *exactly* when the engine is correct; the floor
///   catches selection, tie-break, and member-mask bugs. How often K leaves
///   enough visible candidates for a full top-5 (coverage) is a workload
///   property, measured by the `crowd_scale` benchmark, not this subject.
///   Viewers whose whole shortlist sits bitwise-coincident with them (a user
///   parked inside the lobby stack) are excluded: a proximity shortlist is
///   definitionally uninformative there — every member is at distance ~0 and
///   masked by the coincidence rule — and a parked user is not being served.
pub struct PrunedVsFull {
    /// Mean top-k agreement floor for the serving-K leg.
    pub min_top_k_agreement: f64,
}

impl Default for PrunedVsFull {
    fn default() -> Self {
        PrunedVsFull { min_top_k_agreement: 0.9 }
    }
}

impl DiffSubject for PrunedVsFull {
    type Case = PrunedSceneCase;

    fn pair(&self) -> String {
        "session: K-candidate pruned vs full-N scene".to_string()
    }

    fn generate(&self, rng: &mut StdRng) -> PrunedSceneCase {
        let (n, ticks) = (6usize..20, 3usize..8).generate(rng);
        let viewer_count = (1usize..4).generate(rng).min(n);
        let mut viewers: Vec<usize> = (0..viewer_count).map(|_| (0usize..n).generate(rng)).collect();
        viewers.sort_unstable();
        viewers.dedup();
        let top_k = (1usize..6).generate(rng);
        let serve_k = ((2 * n).div_ceil(3).max(5)..n).generate(rng).min(n - 1);
        let mr_mask: Vec<bool> = (0..n).map(|_| (0u32..2).generate(rng) == 1).collect();
        let incremental = (0u32..2).generate(rng) == 1;
        let (teleport_prob, churn_prob) = (0.0f64..0.3, 0.0f64..0.3).generate(rng);
        let step = (0.02f64..0.8).generate(rng);
        let lobby = Point2::new(20.0, 20.0);
        let in_room_pos = |rng: &mut StdRng| -> Point2 {
            Point2::new((-4.0f64..4.0).generate(rng), (-4.0f64..4.0).generate(rng))
        };
        let mut in_room: Vec<bool> = (0..n).map(|_| (0u32..4).generate(rng) != 0).collect();
        let mut current: Vec<Point2> =
            (0..n).map(|i| if in_room[i] { in_room_pos(rng) } else { lobby }).collect();
        let mut frames = vec![current.clone()];
        for _ in 1..ticks {
            for i in 0..n {
                if (0.0f64..1.0).generate(rng) < churn_prob {
                    in_room[i] = !in_room[i];
                    current[i] = if in_room[i] { in_room_pos(rng) } else { lobby };
                } else if !in_room[i] {
                    // parked: bitwise stationary
                } else if (0.0f64..1.0).generate(rng) < teleport_prob {
                    current[i] = in_room_pos(rng);
                } else {
                    let (dx, dy) = (-step..step, -step..step).generate(rng);
                    current[i] = Point2::new(
                        (current[i].x + dx).clamp(-4.0, 4.0),
                        (current[i].y + dy).clamp(-4.0, 4.0),
                    );
                }
            }
            frames.push(current.clone());
        }
        PrunedSceneCase { n, viewers, top_k, serve_k, mr_mask, incremental, frames }
    }

    fn compare(&self, case: &PrunedSceneCase) -> Option<StepDivergence> {
        use xr_session::{Frame, SceneConfig, SceneEngine};

        let scene = SceneConfig {
            body_radius: 0.2,
            mr_mask: case.mr_mask.clone(),
            room_diagonal: 8.0 * std::f64::consts::SQRT_2,
        };
        let build = |prune_k: usize| {
            let mut engine = SceneEngine::new(case.n, scene.clone(), &case.viewers);
            engine.set_incremental(case.incremental);
            engine.set_prune_k(prune_k);
            engine
        };
        let mut full = build(0);
        let mut pruned_full = build(case.n - 1);
        let mut pruned_serve = build(case.serve_k);

        let mut agreement_sum = 0.0;
        let mut agreement_count = 0usize;
        for (t, frame) in case.frames.iter().enumerate() {
            full.push(Frame::new(frame.clone()));
            pruned_full.push(Frame::new(frame.clone()));
            pruned_serve.push(Frame::new(frame.clone()));
            for &viewer in &case.viewers {
                let vf = full.view(viewer, t);
                let vp = pruned_full.view(viewer, t);
                let cs = vp.candidates().expect("prune_k = n-1 builds shortlists");
                // full-K leg: membership is complete…
                if cs.ids().len() != case.n - 1 {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!(
                            "viewer {viewer} t={t}: full-K shortlist holds {} of {} candidates",
                            cs.ids().len(),
                            case.n - 1
                        ),
                    });
                }
                // …distances and mask bits are bitwise the dense rows…
                for (idx, &w) in cs.ids().iter().enumerate() {
                    let (a, b) = (cs.distances()[idx], vf.distances()[w as usize]);
                    if a.to_bits() != b.to_bits() {
                        return Some(StepDivergence {
                            step: t,
                            detail: format!(
                                "viewer {viewer} distance to {w} at t={t}: pruned {a:?} vs full {b:?}"
                            ),
                        });
                    }
                    if cs.mask()[idx] != vf.candidate_mask()[w as usize] {
                        return Some(StepDivergence {
                            step: t,
                            detail: format!(
                                "viewer {viewer} mask[{w}] at t={t}: pruned {} vs full {}",
                                cs.mask()[idx],
                                vf.candidate_mask()[w as usize]
                            ),
                        });
                    }
                }
                // …the restricted occlusion graph is the full edge set…
                let full_edges: Vec<(u32, u32)> =
                    vf.occlusion().edges().map(|(a, b)| (a as u32, b as u32)).collect();
                if cs.edges() != full_edges.as_slice() {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!(
                            "viewer {viewer} occlusion at t={t}: pruned {:?} vs full {:?}",
                            cs.edges(),
                            full_edges
                        ),
                    });
                }
                // …and the decision stream is identical
                let df = xr_serve::decide_topk_f64(vf.candidate_mask(), vf.distances(), case.top_k);
                let dp = decide_for_view(&vp, case.n, case.top_k);
                if df != dp {
                    return Some(StepDivergence {
                        step: t,
                        detail: format!("viewer {viewer} decision at t={t}: pruned {dp:?} vs full {df:?}"),
                    });
                }

                // serving-K leg: rank candidates by proximity on both sides
                // and accumulate top-k agreement
                let vs = pruned_serve.view(viewer, t);
                let ss = vs.candidates().expect("prune_k > 0 builds shortlists");
                if ss.distances().iter().fold(0.0f64, |m, &d| m.max(d)) < 1e-9 {
                    // lobby-stacked viewer: the shortlist is all coincident
                    continue;
                }
                let mut full_score = vec![f64::NEG_INFINITY; case.n];
                let mut pruned_score = vec![f64::NEG_INFINITY; case.n];
                for (w, score) in full_score.iter_mut().enumerate() {
                    if w != viewer && vf.candidate_mask()[w] {
                        *score = -vf.distances()[w];
                    }
                }
                for (idx, &w) in ss.ids().iter().enumerate() {
                    if ss.mask()[idx] {
                        pruned_score[w as usize] = -ss.distances()[idx];
                    }
                }
                let visible = |s: &[f64]| s.iter().filter(|v| v.is_finite()).count();
                let k = 5.min(visible(&full_score)).min(visible(&pruned_score));
                if k > 0 {
                    agreement_sum += crate::metrics::top_k_overlap(&full_score, &pruned_score, k);
                    agreement_count += 1;
                }
            }
        }
        if agreement_count > 0 {
            let mean = agreement_sum / agreement_count as f64;
            if mean < self.min_top_k_agreement {
                return Some(StepDivergence {
                    step: case.frames.len(),
                    detail: format!(
                        "serving-K leg (K={}): mean top-5 agreement {mean:.3} < {:.2}",
                        case.serve_k, self.min_top_k_agreement
                    ),
                });
            }
        }
        None
    }

    fn shrink(&self, case: &PrunedSceneCase) -> Vec<PrunedSceneCase> {
        let mut out = Vec::new();
        if case.frames.len() > 2 {
            out.push(PrunedSceneCase {
                frames: case.frames[..case.frames.len() / 2].to_vec(),
                ..case.clone()
            });
            out.push(PrunedSceneCase { frames: case.frames[1..].to_vec(), ..case.clone() });
        }
        if case.n > 6 {
            let n = (case.n / 2).max(6);
            let mut viewers: Vec<usize> = case.viewers.iter().copied().filter(|&v| v < n).collect();
            if viewers.is_empty() {
                viewers.push(0);
            }
            out.push(PrunedSceneCase {
                n,
                viewers,
                top_k: case.top_k,
                serve_k: case.serve_k.min(n - 1),
                mr_mask: case.mr_mask[..n].to_vec(),
                incremental: case.incremental,
                frames: case.frames.iter().map(|f| f[..n].to_vec()).collect(),
            });
        }
        if case.incremental {
            out.push(PrunedSceneCase { incremental: false, ..case.clone() });
        }
        out
    }

    fn describe(&self, case: &PrunedSceneCase) -> String {
        format!(
            "n={} users, {} ticks, viewers {:?}, top_k={}, serve_k={}, incremental={}",
            case.n,
            case.frames.len(),
            case.viewers,
            case.top_k,
            case.serve_k,
            case.incremental
        )
    }
}

/// Rebuilds a CSR matrix from raw entries — exposed for tests that want to
/// cross-check a subject's own comparison logic.
pub fn csr_of(case: &SpmmCase) -> Rc<CsrAdj> {
    Rc::new(case.csr())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately broken pair: the "optimized" sum drops the last
    /// element once the input reaches 6 elements. Proves the runner finds,
    /// reports, and minimizes real divergences.
    struct BrokenSum;

    impl DiffSubject for BrokenSum {
        type Case = Vec<f64>;

        fn pair(&self) -> String {
            "selftest: sum vs broken-sum".to_string()
        }

        fn generate(&self, rng: &mut StdRng) -> Vec<f64> {
            pvec(1.0f64..2.0, 1usize..40).generate(rng)
        }

        fn compare(&self, case: &Vec<f64>) -> Option<StepDivergence> {
            let reference: f64 = case.iter().sum();
            let broken: f64 = if case.len() >= 6 { case[..case.len() - 1].iter().sum() } else { reference };
            (reference.to_bits() != broken.to_bits()).then(|| StepDivergence {
                step: case.len() - 1,
                detail: format!("sum: {reference} vs {broken}"),
            })
        }

        fn shrink(&self, case: &Vec<f64>) -> Vec<Vec<f64>> {
            if case.len() > 1 {
                vec![case[..case.len() / 2].to_vec(), case[..case.len() - 1].to_vec()]
            } else {
                Vec::new()
            }
        }

        fn describe(&self, case: &Vec<f64>) -> String {
            format!("{} elements", case.len())
        }
    }

    #[test]
    fn oracle_finds_and_minimizes_an_injected_bug() {
        let report = run_differential(&BrokenSum, 64);
        let d = report.divergence.expect("the broken kernel must diverge");
        assert_eq!(d.pair, "selftest: sum vs broken-sum");
        // greedy halving + drop-one shrinking must reach the 6-element boundary
        assert_eq!(d.minimized_case, "6 elements", "not fully minimized: {}", d.render());
        assert!(d.shrink_steps > 0);
        let artifact = crate::artifact_dir().join("counterexample-selftest--sum-vs-broken-sum.txt");
        assert!(artifact.exists(), "artifact missing at {}", artifact.display());
        let text = std::fs::read_to_string(artifact).unwrap();
        assert!(text.contains("first diverging step"));
        // the flight-recorder dump rides along with the counterexample
        let flight = crate::artifact_dir().join("flight-selftest--sum-vs-broken-sum.json");
        assert!(flight.exists(), "flight dump missing at {}", flight.display());
        let dump = std::fs::read_to_string(flight).unwrap();
        assert!(dump.contains("traceEvents") && dump.contains("flightDumpReason"));
    }

    #[test]
    fn oracle_captures_span_context_at_divergence() {
        let ctx = xr_obs::ObsCtx::new(true, false);
        let _guard = ctx.install();
        let report = run_differential(&BrokenSum, 64);
        let d = report.divergence.unwrap();
        assert!(d.span_path.contains("xr_check.diff"), "span path was {:?}", d.span_path);
        let snap = ctx.registry.snapshot();
        let cases = snap.counter("xr_check.diff.cases{pair=selftest: sum vs broken-sum}").unwrap_or(0);
        assert!(cases >= 1, "per-pair case counter missing: {cases}");
    }

    #[test]
    fn clean_pairs_report_no_divergence_and_run_all_cases() {
        let report = run_differential(&MatmulNaiveVsBlocked, 8);
        assert!(report.divergence.is_none());
        assert_eq!(report.cases_run, 8);
    }
}
