//! Reusable comparison metrics for differential subjects.
//!
//! Cross-implementation oracles that cannot demand bit equality (e.g. the
//! f32-vs-f64 serving split, or pruned-vs-full candidate sets) compare
//! recommendation *behavior* instead: do both streams surface the same top
//! candidates? [`top_k_overlap`] is that metric. The definition lives in
//! `poshgnn::metrics` so the in-process serve-path drift monitor and these
//! offline subjects share one implementation; this module re-exports it
//! under its historical path and keeps the behavioral test suite.

pub use poshgnn::metrics::top_k_overlap;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_overlap_fully() {
        let s = [0.9, 0.1, 0.7, 0.3];
        assert_eq!(top_k_overlap(&s, &s, 2), 1.0);
        assert_eq!(top_k_overlap(&s, &s, 4), 1.0);
    }

    #[test]
    fn disjoint_top_k_overlaps_zero() {
        let a = [1.0, 0.9, 0.0, 0.0];
        let b = [0.0, 0.0, 1.0, 0.9];
        assert_eq!(top_k_overlap(&a, &b, 2), 0.0);
    }

    #[test]
    fn partial_overlap_is_fractional() {
        let a = [1.0, 0.9, 0.8, 0.0];
        let b = [1.0, 0.0, 0.8, 0.9];
        // top-3 of a = {0,1,2}; of b = {0,3,2} → 2 shared out of 3
        assert!((top_k_overlap(&a, &b, 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn small_score_perturbations_keep_full_overlap() {
        let a = [0.9, 0.5, 0.7, 0.1];
        let b: Vec<f64> = a.iter().map(|v| v + 1e-7).collect();
        assert_eq!(top_k_overlap(&a, &b, 3), 1.0);
    }

    #[test]
    fn k_is_clamped_and_zero_is_vacuous() {
        let a = [0.3, 0.6];
        let b = [0.6, 0.3];
        assert_eq!(top_k_overlap(&a, &b, 10), 1.0, "k beyond length compares everything");
        assert_eq!(top_k_overlap(&a, &b, 0), 1.0);
        assert_eq!(top_k_overlap(&[], &[], 3), 1.0);
    }

    #[test]
    fn ties_break_by_ascending_index_like_top_k_indices() {
        // scores all equal: top-2 must be {0, 1} for both vectors
        let a = [0.5, 0.5, 0.5];
        let b = [0.5, 0.5, 0.5];
        assert_eq!(top_k_overlap(&a, &b, 2), 1.0);
    }

    #[test]
    fn nan_scores_sort_deterministically() {
        let a = [f64::NAN, 0.9, 0.1];
        let b = [f64::NAN, 0.9, 0.1];
        // total_cmp puts NaN above +inf in descending order, same both sides
        assert_eq!(top_k_overlap(&a, &b, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        top_k_overlap(&[1.0], &[1.0, 2.0], 1);
    }
}
