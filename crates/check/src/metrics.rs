//! Reusable comparison metrics for differential subjects.
//!
//! Cross-implementation oracles that cannot demand bit equality (e.g. the
//! f32-vs-f64 serving split, or pruned-vs-full candidate sets) compare
//! recommendation *behavior* instead: do both streams surface the same top
//! candidates? [`top_k_overlap`] is that metric, factored out here so every
//! such subject shares one definition.

/// Fraction of shared indices between the top-`k` rankings of two score
/// vectors, in `[0, 1]`.
///
/// Ranking is descending by score with ascending-index tiebreak — the same
/// order as `poshgnn::top_k_indices`, and NaN-safe via `total_cmp`. `k` is
/// clamped to the vector length; `k = 0` (or empty inputs) returns 1.0
/// (two empty rankings agree vacuously).
///
/// # Panics
///
/// Panics when the two vectors have different lengths.
pub fn top_k_overlap(a: &[f64], b: &[f64], k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must have equal length");
    let k = k.min(a.len());
    if k == 0 {
        return 1.0;
    }
    let top = |scores: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&x, &y| scores[y].total_cmp(&scores[x]).then(x.cmp(&y)));
        idx.truncate(k);
        idx
    };
    let ta = top(a);
    let tb: std::collections::BTreeSet<usize> = top(b).into_iter().collect();
    let shared = ta.iter().filter(|i| tb.contains(i)).count();
    shared as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_overlap_fully() {
        let s = [0.9, 0.1, 0.7, 0.3];
        assert_eq!(top_k_overlap(&s, &s, 2), 1.0);
        assert_eq!(top_k_overlap(&s, &s, 4), 1.0);
    }

    #[test]
    fn disjoint_top_k_overlaps_zero() {
        let a = [1.0, 0.9, 0.0, 0.0];
        let b = [0.0, 0.0, 1.0, 0.9];
        assert_eq!(top_k_overlap(&a, &b, 2), 0.0);
    }

    #[test]
    fn partial_overlap_is_fractional() {
        let a = [1.0, 0.9, 0.8, 0.0];
        let b = [1.0, 0.0, 0.8, 0.9];
        // top-3 of a = {0,1,2}; of b = {0,3,2} → 2 shared out of 3
        assert!((top_k_overlap(&a, &b, 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn small_score_perturbations_keep_full_overlap() {
        let a = [0.9, 0.5, 0.7, 0.1];
        let b: Vec<f64> = a.iter().map(|v| v + 1e-7).collect();
        assert_eq!(top_k_overlap(&a, &b, 3), 1.0);
    }

    #[test]
    fn k_is_clamped_and_zero_is_vacuous() {
        let a = [0.3, 0.6];
        let b = [0.6, 0.3];
        assert_eq!(top_k_overlap(&a, &b, 10), 1.0, "k beyond length compares everything");
        assert_eq!(top_k_overlap(&a, &b, 0), 1.0);
        assert_eq!(top_k_overlap(&[], &[], 3), 1.0);
    }

    #[test]
    fn ties_break_by_ascending_index_like_top_k_indices() {
        // scores all equal: top-2 must be {0, 1} for both vectors
        let a = [0.5, 0.5, 0.5];
        let b = [0.5, 0.5, 0.5];
        assert_eq!(top_k_overlap(&a, &b, 2), 1.0);
    }

    #[test]
    fn nan_scores_sort_deterministically() {
        let a = [f64::NAN, 0.9, 0.1];
        let b = [f64::NAN, 0.9, 0.1];
        // total_cmp puts NaN above +inf in descending order, same both sides
        assert_eq!(top_k_overlap(&a, &b, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        top_k_overlap(&[1.0], &[1.0, 2.0], 1);
    }
}
