//! Core neural layers: dense (MLP) and graph-convolution layers.

use rand::Rng;
use xr_tensor::{init, Matrix, ParamId, ParamStore, Tape, TapeLinOp, Var};

/// Activation applied after a layer's affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// Rectified linear unit — the paper's `δ` in Eq. 1.
    Relu,
    /// Logistic sigmoid (used for probability outputs `r̃_t`, `σ`).
    Sigmoid,
    /// Hyperbolic tangent (used inside GRU cells).
    Tanh,
}

impl Activation {
    /// Applies the activation to a tape node.
    pub fn apply<'t>(&self, x: Var<'t>) -> Var<'t> {
        match self {
            Activation::None => x,
            Activation::Relu => x.relu(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Tanh => x.tanh(),
        }
    }

    /// The f32 serving-path evaluation of this activation — the tapeless
    /// scalar the serve kernels (`poshgnn::serve`, degraded room serving)
    /// apply elementwise. Kept next to the tape [`Activation::apply`] so the
    /// train and serve nonlinearities can never drift apart silently.
    pub fn apply_f32(&self, v: f32) -> f32 {
        match self {
            Activation::None => v,
            Activation::Relu => v.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            Activation::Tanh => v.tanh(),
        }
    }

    /// The equivalent [`xr_tensor::Nonlinearity`] for fused epilogues.
    pub fn nonlinearity(&self) -> xr_tensor::Nonlinearity {
        match self {
            Activation::None => xr_tensor::Nonlinearity::None,
            Activation::Relu => xr_tensor::Nonlinearity::Relu,
            Activation::Sigmoid => xr_tensor::Nonlinearity::Sigmoid,
            Activation::Tanh => xr_tensor::Nonlinearity::Tanh,
        }
    }
}

/// A fully connected layer `act(X·W + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: ParamId,
    bias: ParamId,
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Registers a dense layer's parameters (Xavier-initialized weight,
    /// zero bias).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let weight = store.register(format!("{name}.weight"), init::xavier_uniform(in_dim, out_dim, rng));
        let bias = store.register(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        Dense { weight, bias, activation, in_dim, out_dim }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass for a batch `x` of shape `(batch, in_dim)`.
    pub fn forward<'t>(&self, tape: &'t Tape, store: &ParamStore, x: Var<'t>) -> Var<'t> {
        let w = tape.param(store, self.weight);
        let b = tape.param(store, self.bias);
        self.activation.apply(x.matmul(w).add_row_broadcast(b))
    }
}

/// A stack of dense layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes; `activations.len()` must be
    /// `dims.len() - 1`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        activations: &[Activation],
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least one layer");
        assert_eq!(activations.len(), dims.len() - 1, "one activation per layer");
        let layers = (0..dims.len() - 1)
            .map(|i| Dense::new(store, &format!("{name}.{i}"), dims[i], dims[i + 1], activations[i], rng))
            .collect();
        Mlp { layers }
    }

    /// Forward pass through all layers.
    pub fn forward<'t>(&self, tape: &'t Tape, store: &ParamStore, mut x: Var<'t>) -> Var<'t> {
        for layer in &self.layers {
            x = layer.forward(tape, store, x);
        }
        x
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

/// The paper's graph-convolution layer (Eq. 1):
///
/// `h^{l+1}_{w} = δ( M₁ · h^l_w + M₂ · Σ_{(w,u) ∈ E} h^l_u )`
///
/// In batched matrix form over node features `H (N × d)` and adjacency
/// `A (N × N)`: `act(H·W₁ + A·H·W₂ + b)`.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    w_self: ParamId,
    w_neigh: ParamId,
    bias: ParamId,
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl GcnLayer {
    /// Registers the layer parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let w_self = store.register(format!("{name}.w_self"), init::xavier_uniform(in_dim, out_dim, rng));
        let w_neigh = store.register(format!("{name}.w_neigh"), init::xavier_uniform(in_dim, out_dim, rng));
        let bias = store.register(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        GcnLayer { w_self, w_neigh, bias, activation, in_dim, out_dim }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Overwrites the bias with a constant — e.g. a negative value before a
    /// sigmoid output so nodes default to "not recommended" until evidence
    /// accumulates.
    pub fn set_bias(&self, store: &mut ParamStore, value: f64) {
        store.value_mut(self.bias).fill(value);
    }

    /// Parameter ids `(w_self, w_neigh, bias)` — lets serving code read the
    /// trained weights out of the store (e.g. for down-conversion) without
    /// going through the tape.
    pub fn param_ids(&self) -> (ParamId, ParamId, ParamId) {
        (self.w_self, self.w_neigh, self.bias)
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass: `h (N × in_dim)`, `adj` the `N × N` adjacency constant.
    pub fn forward<'t>(&self, tape: &'t Tape, store: &ParamStore, h: Var<'t>, adj: Var<'t>) -> Var<'t> {
        self.forward_agg(tape, store, h, &adj)
    }

    /// Forward pass generic over the adjacency representation: `adj` may be a
    /// dense [`Var`] node or a sparse [`xr_tensor::SparseVar`] operand. The
    /// sparse path turns the `A·H` aggregation from O(N²·d) into O(nnz·d).
    pub fn forward_agg<'t>(
        &self,
        tape: &'t Tape,
        store: &ParamStore,
        h: Var<'t>,
        adj: &impl TapeLinOp<'t>,
    ) -> Var<'t> {
        let w1 = tape.param(store, self.w_self);
        let w2 = tape.param(store, self.w_neigh);
        let b = tape.param(store, self.bias);
        let own = h.matmul(w1);
        let neigh = adj.left_matmul(h).matmul(w2);
        // fused epilogue: bit-identical to
        // `self.activation.apply((own + neigh).add_row_broadcast(b))`
        own.sum_bias_act(neigh, b, self.activation.nonlinearity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xr_tensor::{Adam, Optimizer};

    #[test]
    fn dense_shapes_and_activation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Dense::new(&mut store, "d", 4, 3, Activation::Relu, &mut rng);
        assert_eq!((layer.in_dim(), layer.out_dim()), (4, 3));
        let tape = Tape::new();
        let x = tape.constant(Matrix::ones(5, 4));
        let y = layer.forward(&tape, &store, x);
        assert_eq!(y.shape(), (5, 3));
        assert!(y.value().as_slice().iter().all(|&v| v >= 0.0), "ReLU output must be non-negative");
    }

    #[test]
    fn mlp_depth_and_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "mlp", &[6, 8, 1], &[Activation::Relu, Activation::Sigmoid], &mut rng);
        assert_eq!(mlp.depth(), 2);
        let tape = Tape::new();
        let x = tape.constant(Matrix::ones(3, 6));
        let y = mlp.forward(&tape, &store, x);
        assert_eq!(y.shape(), (3, 1));
        assert!(y.value().as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn gcn_isolated_node_ignores_others() {
        // With a zero adjacency row, a node's output depends only on itself.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let gcn = GcnLayer::new(&mut store, "g", 2, 2, Activation::None, &mut rng);

        let features = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let adj_a = Matrix::from_vec(3, 3, vec![0., 0., 0., 0., 0., 1., 0., 1., 0.]).unwrap();

        let tape = Tape::new();
        let h = tape.constant(features.clone());
        let a = tape.constant(adj_a);
        let out_a = gcn.forward(&tape, &store, h, a).value();

        // change the *other* nodes' links; node 0 must be unaffected
        let adj_b = Matrix::zeros(3, 3);
        let tape2 = Tape::new();
        let h2 = tape2.constant(features);
        let a2 = tape2.constant(adj_b);
        let out_b = gcn.forward(&tape2, &store, h2, a2).value();

        for c in 0..2 {
            assert!((out_a[(0, c)] - out_b[(0, c)]).abs() < 1e-12);
        }
        // but connected nodes do change
        assert!((out_a[(1, 0)] - out_b[(1, 0)]).abs() > 1e-9);
    }

    #[test]
    fn gcn_aggregates_neighbor_sum() {
        // Identity weights, zero bias → output = H + A·H exactly.
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let gcn = GcnLayer::new(&mut store, "g", 2, 2, Activation::None, &mut rng);
        // overwrite with identity weights
        *store.value_mut(store.ids().next().unwrap()) = Matrix::identity(2);
        let ids: Vec<_> = store.ids().collect();
        *store.value_mut(ids[1]) = Matrix::identity(2);

        let h_mat = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let a_mat = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let tape = Tape::new();
        let h = tape.constant(h_mat.clone());
        let a = tape.constant(a_mat.clone());
        let out = gcn.forward(&tape, &store, h, a).value();
        let expected = h_mat.add(&a_mat.matmul(&h_mat));
        assert!(out.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn gcn_sparse_and_dense_adjacency_agree() {
        use std::rc::Rc;
        use xr_tensor::CsrAdj;

        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let gcn = GcnLayer::new(&mut store, "g", 3, 2, Activation::Relu, &mut rng);
        let h_mat = Matrix::from_fn(5, 3, |r, c| (r as f64) - 0.7 * c as f64);
        let a_mat = Matrix::from_fn(5, 5, |r, c| if (r + 2 * c) % 3 == 0 && r != c { 0.5 } else { 0.0 });

        let tape = Tape::new();
        let dense =
            gcn.forward(&tape, &store, tape.constant(h_mat.clone()), tape.constant(a_mat.clone())).value();

        let tape2 = Tape::new();
        let a_sparse = tape2.sparse(Rc::new(CsrAdj::from_dense(&a_mat, 0.0)));
        let sparse = gcn.forward_agg(&tape2, &store, tape2.constant(h_mat), &a_sparse).value();

        assert!(dense.approx_eq(&sparse, 1e-12));
    }

    #[test]
    fn gcn_is_trainable_end_to_end() {
        // Teach a 1-layer GCN to output 1 for a marked node and 0 otherwise.
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let gcn = GcnLayer::new(&mut store, "g", 1, 1, Activation::Sigmoid, &mut rng);
        let mut adam = Adam::with_lr(0.1);
        let features = Matrix::from_vec(3, 1, vec![1.0, 0.0, 0.0]).unwrap();
        let adj = Matrix::zeros(3, 3);
        let target = Matrix::from_vec(3, 1, vec![1.0, 0.0, 0.0]).unwrap();
        let mut last = f64::INFINITY;
        for _ in 0..200 {
            let tape = Tape::new();
            let h = tape.constant(features.clone());
            let a = tape.constant(adj.clone());
            let y = gcn.forward(&tape, &store, h, a);
            let t = tape.constant(target.clone());
            let diff = y - t;
            let loss = (diff * diff).mean();
            last = loss.scalar();
            loss.backward(&mut store);
            adam.step(&mut store);
        }
        assert!(last < 0.02, "GCN failed to fit: loss {last}");
    }

    #[test]
    #[should_panic(expected = "one activation per layer")]
    fn mlp_rejects_mismatched_activations() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        Mlp::new(&mut store, "m", &[2, 2, 2], &[Activation::Relu], &mut rng);
    }
}
