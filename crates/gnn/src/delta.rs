//! Delta-maintained aggregation operators.
//!
//! GNN aggregation over a slowly changing graph sequence (per-tick occlusion
//! snapshots) spends most of its operator-construction time rebuilding CSR
//! matrices whose rows barely change. [`AdjDeltaCache`] keeps the adjacency
//! operator set — raw CSR `A`, mean-aggregation CSR `D⁻¹A`, and the degree
//! vector — warm across steps, consuming [`xr_graph::EdgeDelta`]s and
//! patching only the touched rows via [`xr_tensor::CsrAdj`] row surgery.
//!
//! The cache is an optimization layer under the repo-wide bit-identicality
//! contract: every stepped operator equals the corresponding from-scratch
//! build ([`UGraph::adjacency_csr`] / [`UGraph::adjacency_norm_csr`]) bit for
//! bit. Untouched rows are copied verbatim; rebuilt rows reproduce the fresh
//! sorted unit-valued (resp. `1.0/degree`-valued) layout; degrees are
//! maintained by ±1.0 steps, exact in f64 for any realizable degree.

use std::rc::Rc;

use xr_graph::{EdgeDelta, UGraph};
use xr_tensor::CsrAdj;

/// Warm adjacency/normalized-adjacency/degree operators for a graph
/// sequence, updated per step from edge deltas instead of rebuilt.
#[derive(Debug, Clone)]
pub struct AdjDeltaCache {
    csr: Rc<CsrAdj>,
    norm: Rc<CsrAdj>,
    deg: Vec<f64>,
}

impl AdjDeltaCache {
    /// Builds the operator set from scratch for the sequence's first graph.
    pub fn fresh(g: &UGraph) -> Self {
        let csr = Rc::new(g.adjacency_csr());
        let norm = Rc::new(csr.row_normalized());
        let deg = (0..g.node_count()).map(|v| g.degree(v) as f64).collect();
        AdjDeltaCache { csr, norm, deg }
    }

    /// Advances the operators from `prev`'s to `next`'s, patching only rows
    /// touched by the edge delta, and returns that delta. `prev` must be the
    /// graph the cache currently describes.
    ///
    /// When the delta is empty the existing `Rc`s are kept (no allocation at
    /// all for fully static steps).
    pub fn step(&mut self, prev: &UGraph, next: &UGraph) -> EdgeDelta {
        let delta = prev.edge_delta(next);
        if !delta.is_empty() {
            self.csr = Rc::new(next.adjacency_csr_from(&self.csr, &delta));
            self.norm = Rc::new(next.adjacency_norm_csr_from(&self.norm, &delta));
            for &(a, b) in &delta.added {
                self.deg[a] += 1.0;
                self.deg[b] += 1.0;
            }
            for &(a, b) in &delta.removed {
                self.deg[a] -= 1.0;
                self.deg[b] -= 1.0;
            }
        }
        xr_obs::counter_add("gnn.adj_delta.steps", &[], 1);
        xr_obs::counter_add("gnn.adj_delta.edges_changed", &[], delta.len() as u64);
        delta
    }

    /// The current adjacency CSR `A`, shared.
    pub fn csr(&self) -> Rc<CsrAdj> {
        Rc::clone(&self.csr)
    }

    /// The current mean-aggregation CSR `D⁻¹A`, shared.
    pub fn norm(&self) -> Rc<CsrAdj> {
        Rc::clone(&self.norm)
    }

    /// The current degree vector (exact integers in f64).
    pub fn deg(&self) -> &[f64] {
        &self.deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stepped_operators_equal_fresh_builds_bitwise() {
        let snapshots = [
            UGraph::from_edges(7, [(0, 1), (1, 2), (5, 6)]),
            UGraph::from_edges(7, [(0, 1), (2, 3), (5, 6), (4, 6)]),
            UGraph::from_edges(7, [(0, 1), (2, 3), (5, 6), (4, 6)]), // static step
            UGraph::new(7),
            UGraph::from_edges(7, [(3, 4)]),
        ];
        let mut cache = AdjDeltaCache::fresh(&snapshots[0]);
        for w in snapshots.windows(2) {
            let delta = cache.step(&w[0], &w[1]);
            assert_eq!(delta, w[0].edge_delta(&w[1]));
            assert_eq!(*cache.csr(), w[1].adjacency_csr());
            assert_eq!(*cache.norm(), w[1].adjacency_norm_csr());
            let fresh_deg: Vec<f64> = (0..7).map(|v| w[1].degree(v) as f64).collect();
            let (a, b): (Vec<u64>, Vec<u64>) = (
                cache.deg().iter().map(|d| d.to_bits()).collect(),
                fresh_deg.iter().map(|d| d.to_bits()).collect(),
            );
            assert_eq!(a, b, "degree bits");
        }
    }

    #[test]
    fn static_step_reuses_the_shared_operators() {
        let g = UGraph::from_edges(4, [(0, 1), (2, 3)]);
        let mut cache = AdjDeltaCache::fresh(&g);
        let before = cache.csr();
        let delta = cache.step(&g, &g.clone());
        assert!(delta.is_empty());
        assert!(Rc::ptr_eq(&before, &cache.csr()), "empty delta must not reallocate");
    }
}
