//! # xr-gnn
//!
//! Graph-neural-network building blocks on top of the `xr-tensor` autodiff
//! engine — the role PyTorch Geometric plays for the paper:
//!
//! * [`layers`] — dense layers, MLPs, and the paper's sum-aggregation GCN
//!   layer (Eq. 1) used by both PDR and LWP.
//! * [`recurrent`] — GRU, T-GCN [73], and diffusion-convolutional GRU
//!   (DCRNN [72]) cells for the recurrent baselines.
//! * [`delta`] — delta-maintained CSR aggregation operators for slowly
//!   changing graph sequences (per-tick occlusion snapshots).

pub mod delta;
pub mod layers;
pub mod recurrent;

pub use delta::AdjDeltaCache;
pub use layers::{Activation, Dense, GcnLayer, Mlp};
pub use recurrent::{transition_matrix, DcGruCell, DiffusionConv, GruCell, TgcnCell};
