//! Recurrent graph cells: GRU, T-GCN, and the diffusion-convolutional GRU
//! used by the DCRNN baseline.

use rand::Rng;
use xr_tensor::{init, Matrix, ParamId, ParamStore, Tape, Var};

use crate::layers::{Activation, GcnLayer};

/// A standard GRU cell over per-node feature rows.
///
/// `z = σ(X·Wz + H·Uz + bz)`, `r = σ(X·Wr + H·Ur + br)`,
/// `h̃ = tanh(X·Wh + (r⊙H)·Uh + bh)`, `H' = (1−z)⊙H + z⊙h̃`.
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    in_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Registers GRU parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let wz = store.register(format!("{name}.wz"), init::xavier_uniform(in_dim, hidden_dim, rng));
        let uz = store.register(format!("{name}.uz"), init::xavier_uniform(hidden_dim, hidden_dim, rng));
        let wr = store.register(format!("{name}.wr"), init::xavier_uniform(in_dim, hidden_dim, rng));
        let ur = store.register(format!("{name}.ur"), init::xavier_uniform(hidden_dim, hidden_dim, rng));
        let wh = store.register(format!("{name}.wh"), init::xavier_uniform(in_dim, hidden_dim, rng));
        let uh = store.register(format!("{name}.uh"), init::xavier_uniform(hidden_dim, hidden_dim, rng));
        let bz = store.register(format!("{name}.bz"), Matrix::zeros(1, hidden_dim));
        let br = store.register(format!("{name}.br"), Matrix::zeros(1, hidden_dim));
        let bh = store.register(format!("{name}.bh"), Matrix::zeros(1, hidden_dim));
        GruCell { wz, uz, bz, wr, ur, br, wh, uh, bh, in_dim, hidden_dim }
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// One recurrence step: `x (N × in)`, `h (N × hidden)` → new hidden.
    pub fn step<'t>(&self, tape: &'t Tape, store: &ParamStore, x: Var<'t>, h: Var<'t>) -> Var<'t> {
        let p = |id| tape.param(store, id);
        let z = (x.matmul(p(self.wz)) + h.matmul(p(self.uz))).add_row_broadcast(p(self.bz)).sigmoid();
        let r = (x.matmul(p(self.wr)) + h.matmul(p(self.ur))).add_row_broadcast(p(self.br)).sigmoid();
        let h_tilde =
            (x.matmul(p(self.wh)) + (r * h).matmul(p(self.uh))).add_row_broadcast(p(self.bh)).tanh();
        z.one_minus() * h + z * h_tilde
    }
}

/// T-GCN cell [73]: a GCN extracts spatial features at each step, a GRU
/// integrates them over time.
#[derive(Debug, Clone)]
pub struct TgcnCell {
    gcn: GcnLayer,
    gru: GruCell,
}

impl TgcnCell {
    /// Registers a T-GCN cell: a GCN mapping `in_dim → spatial_dim`, feeding
    /// a GRU with `hidden_dim` units.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        spatial_dim: usize,
        hidden_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let gcn = GcnLayer::new(store, &format!("{name}.gcn"), in_dim, spatial_dim, Activation::Relu, rng);
        let gru = GruCell::new(store, &format!("{name}.gru"), spatial_dim, hidden_dim, rng);
        TgcnCell { gcn, gru }
    }

    /// Hidden dimension of the temporal state.
    pub fn hidden_dim(&self) -> usize {
        self.gru.hidden_dim()
    }

    /// One step: spatial convolution then temporal gating.
    pub fn step<'t>(
        &self,
        tape: &'t Tape,
        store: &ParamStore,
        x: Var<'t>,
        adj: Var<'t>,
        h: Var<'t>,
    ) -> Var<'t> {
        let spatial = self.gcn.forward(tape, store, x, adj);
        self.gru.step(tape, store, spatial, h)
    }
}

/// K-step diffusion convolution (the spatial operator of DCRNN [72]):
/// `DC(X) = Σ_{k=0..K} P^k X W_k`, with `P` the row-normalized transition
/// matrix of the graph. Bidirectionality degenerates to one direction on our
/// undirected occlusion graphs.
#[derive(Debug, Clone)]
pub struct DiffusionConv {
    weights: Vec<ParamId>,
    bias: ParamId,
    k: usize,
    out_dim: usize,
}

impl DiffusionConv {
    /// Registers a diffusion convolution with `k + 1` hop weights.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        k: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let weights = (0..=k)
            .map(|i| store.register(format!("{name}.w{i}"), init::xavier_uniform(in_dim, out_dim, rng)))
            .collect();
        let bias = store.register(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        DiffusionConv { weights, bias, k, out_dim }
    }

    /// Diffusion order `K`.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Forward: `x (N × in)`, `transition` the row-normalized `N × N` random
    /// walk matrix `P`. Applies `Σ_k P^k X W_k` by iterated multiplication.
    pub fn forward<'t>(
        &self,
        tape: &'t Tape,
        store: &ParamStore,
        x: Var<'t>,
        transition: Var<'t>,
    ) -> Var<'t> {
        let mut diffused = x;
        let mut acc = x.matmul(tape.param(store, self.weights[0]));
        for w in &self.weights[1..] {
            diffused = transition.matmul(diffused);
            acc = acc + diffused.matmul(tape.param(store, *w));
        }
        acc.add_row_broadcast(tape.param(store, self.bias))
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// Diffusion-convolutional GRU cell — the recurrent kernel of DCRNN [72]:
/// every affine map inside the GRU is replaced by a diffusion convolution.
#[derive(Debug, Clone)]
pub struct DcGruCell {
    dc_z: DiffusionConv,
    dc_r: DiffusionConv,
    dc_h: DiffusionConv,
    hidden_dim: usize,
}

impl DcGruCell {
    /// Registers the three gate convolutions; each consumes `[x ‖ h]`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
        k: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let cat = in_dim + hidden_dim;
        DcGruCell {
            dc_z: DiffusionConv::new(store, &format!("{name}.z"), cat, hidden_dim, k, rng),
            dc_r: DiffusionConv::new(store, &format!("{name}.r"), cat, hidden_dim, k, rng),
            dc_h: DiffusionConv::new(store, &format!("{name}.h"), cat, hidden_dim, k, rng),
            hidden_dim,
        }
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// One step with transition matrix `p` (row-normalized adjacency).
    pub fn step<'t>(
        &self,
        tape: &'t Tape,
        store: &ParamStore,
        x: Var<'t>,
        p: Var<'t>,
        h: Var<'t>,
    ) -> Var<'t> {
        let xh = tape.concat_cols(&[x, h]);
        let z = self.dc_z.forward(tape, store, xh, p).sigmoid();
        let r = self.dc_r.forward(tape, store, xh, p).sigmoid();
        let x_rh = tape.concat_cols(&[x, r * h]);
        let h_tilde = self.dc_h.forward(tape, store, x_rh, p).tanh();
        z.one_minus() * h + z * h_tilde
    }
}

/// Row-normalized transition matrix `P = D⁻¹A` from a dense adjacency;
/// isolated nodes get a zero row (they receive no diffusion).
pub fn transition_matrix(adj: &Matrix) -> Matrix {
    let (n, m) = adj.shape();
    assert_eq!(n, m, "adjacency must be square");
    let mut out = Matrix::zeros(n, n);
    for r in 0..n {
        let deg: f64 = adj.row(r).iter().sum();
        if deg > 0.0 {
            for c in 0..n {
                out[(r, c)] = adj[(r, c)] / deg;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xr_tensor::{Adam, Optimizer};

    #[test]
    fn gru_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 3, 5, &mut rng);
        assert_eq!(cell.hidden_dim(), 5);
        assert_eq!(cell.in_dim(), 3);
        let tape = Tape::new();
        let x = tape.constant(Matrix::ones(4, 3));
        let h = tape.constant(Matrix::zeros(4, 5));
        let h2 = cell.step(&tape, &store, x, h);
        assert_eq!(h2.shape(), (4, 5));
        assert!(h2.value().all_finite());
    }

    #[test]
    fn gru_state_is_bounded() {
        // tanh candidate + convex gate keeps |h| <= 1 when starting at 0
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 2, 4, &mut rng);
        let tape = Tape::new();
        let mut h = tape.constant(Matrix::zeros(3, 4));
        for step in 0..10 {
            let x = tape.constant(Matrix::full(3, 2, (step as f64).sin() * 5.0));
            h = cell.step(&tape, &store, x, h);
        }
        assert!(h.value().max_abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn gru_can_learn_to_remember() {
        // Memorize the first input and ignore a later distractor.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 1, 4, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(4);
        let readout = crate::layers::Dense::new(&mut store, "read", 4, 1, Activation::None, &mut rng2);
        let mut adam = Adam::with_lr(0.03);
        let mut last = f64::INFINITY;
        for it in 0..400 {
            let signal = if it % 2 == 0 { 1.0 } else { -1.0 };
            let tape = Tape::new();
            let mut h = tape.constant(Matrix::zeros(1, 4));
            let x0 = tape.constant(Matrix::full(1, 1, signal));
            h = cell.step(&tape, &store, x0, h);
            let distractor = tape.constant(Matrix::full(1, 1, 0.0));
            h = cell.step(&tape, &store, distractor, h);
            let y = readout.forward(&tape, &store, h);
            let target = tape.constant(Matrix::full(1, 1, signal));
            let diff = y - target;
            let loss = (diff * diff).sum();
            last = loss.scalar();
            loss.backward(&mut store);
            adam.step(&mut store);
        }
        assert!(last < 0.05, "GRU failed to remember: {last}");
    }

    #[test]
    fn tgcn_step_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let cell = TgcnCell::new(&mut store, "tgcn", 4, 6, 8, &mut rng);
        assert_eq!(cell.hidden_dim(), 8);
        let tape = Tape::new();
        let x = tape.constant(Matrix::ones(5, 4));
        let a = tape.constant(Matrix::zeros(5, 5));
        let h = tape.constant(Matrix::zeros(5, 8));
        let h2 = cell.step(&tape, &store, x, a, h);
        assert_eq!(h2.shape(), (5, 8));
    }

    #[test]
    fn transition_matrix_rows_sum_to_one_or_zero() {
        let adj = Matrix::from_vec(3, 3, vec![0., 1., 1., 1., 0., 0., 1., 0., 0.]).unwrap();
        let p = transition_matrix(&adj);
        let row0: f64 = p.row(0).iter().sum();
        let row1: f64 = p.row(1).iter().sum();
        assert!((row0 - 1.0).abs() < 1e-12);
        assert!((row1 - 1.0).abs() < 1e-12);
        // isolated node: zero row
        let adj2 = Matrix::zeros(2, 2);
        let p2 = transition_matrix(&adj2);
        assert_eq!(p2.row(0).iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn diffusion_conv_order_zero_is_dense() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let dc = DiffusionConv::new(&mut store, "dc", 2, 3, 0, &mut rng);
        assert_eq!(dc.order(), 0);
        let tape = Tape::new();
        let x = tape.constant(Matrix::ones(4, 2));
        let p = tape.constant(Matrix::zeros(4, 4));
        let y = dc.forward(&tape, &store, x, p);
        assert_eq!(y.shape(), (4, 3));
    }

    #[test]
    fn diffusion_conv_uses_neighbors_at_order_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let dc = DiffusionConv::new(&mut store, "dc", 1, 1, 1, &mut rng);
        let x_mat = Matrix::from_vec(2, 1, vec![1.0, 0.0]).unwrap();
        let p_full = transition_matrix(&Matrix::from_vec(2, 2, vec![0., 1., 1., 0.]).unwrap());

        let run = |p_mat: Matrix| {
            let tape = Tape::new();
            let x = tape.constant(x_mat.clone());
            let p = tape.constant(p_mat);
            dc.forward(&tape, &store, x, p).value()
        };
        let with_edge = run(p_full);
        let without = run(Matrix::zeros(2, 2));
        // node 1's output must differ when it can see node 0's feature
        assert!((with_edge[(1, 0)] - without[(1, 0)]).abs() > 1e-9);
    }

    #[test]
    fn dcgru_step_shapes_and_boundedness() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let cell = DcGruCell::new(&mut store, "dcgru", 3, 6, 2, &mut rng);
        assert_eq!(cell.hidden_dim(), 6);
        let tape = Tape::new();
        let p = tape.constant(transition_matrix(
            &Matrix::from_vec(4, 4, vec![0., 1., 0., 0., 1., 0., 1., 0., 0., 1., 0., 1., 0., 0., 1., 0.])
                .unwrap(),
        ));
        let mut h = tape.constant(Matrix::zeros(4, 6));
        for _ in 0..5 {
            let x = tape.constant(Matrix::full(4, 3, 2.0));
            h = cell.step(&tape, &store, x, p, h);
        }
        assert_eq!(h.shape(), (4, 6));
        assert!(h.value().max_abs() <= 1.0 + 1e-9);
    }
}
