//! # xr-graph
//!
//! Graph substrate for the AFTER/POSHGNN reproduction:
//!
//! * [`geom`] — 2-D geometry shared with the crowd simulator.
//! * [`ugraph`] — undirected simple graphs with adjacency queries.
//! * [`social`] — weighted social networks and structural-similarity scores
//!   used to derive preference (`p`) and social-presence (`s`) utilities.
//! * [`occlusion`] — the circular-arc occlusion converter of paper §III-B,
//!   static and dynamic occlusion graphs, and viewport visibility semantics.
//! * [`mwis`] — exact, greedy, and local-search Maximum Weighted Independent
//!   Set solvers (Def. 5), the combinatorial core of the hardness result.
//! * [`circular`] — exact *polynomial* MWIS for circular-arc graphs, the
//!   structured special case the occlusion converter actually produces.
//! * [`gig`] — geometric intersection graphs (Def. 6) and the GIG → DOG
//!   reduction of Lemma 1 / Thm. 1.

pub mod circular;
pub mod geom;
pub mod gig;
pub mod mwis;
pub mod occlusion;
pub mod social;
pub mod ugraph;

pub use circular::{mwis_circular_arcs, CircArc};
pub use geom::Point2;
pub use gig::{gig_to_dog, weights_to_preferences, DiskGig};
pub use mwis::{local_search_improve, mwis_exact, mwis_greedy, MwisSolution};
pub use occlusion::{DynamicOcclusionGraph, OcclusionConverter, ViewArc};
pub use social::SocialGraph;
pub use ugraph::{EdgeDelta, UGraph};
