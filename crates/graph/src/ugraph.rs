//! Simple undirected graph used by occlusion graphs, GIGs, and MWIS solvers.

use std::collections::BTreeSet;

use xr_tensor::CsrAdj;

/// An undirected simple graph over nodes `0..n`.
///
/// Edges are stored both as a sorted edge set (for deterministic iteration
/// and O(log m) membership tests) and as adjacency lists (for traversal).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UGraph {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
    adj: Vec<Vec<usize>>,
}

impl UGraph {
    /// An edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        UGraph { n, edges: BTreeSet::new(), adj: vec![Vec::new(); n] }
    }

    /// Builds a graph from an edge list; duplicate edges and self-loops are
    /// ignored.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = UGraph::new(n);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Builds a graph from edges already in strictly ascending `(min, max)`
    /// order with no duplicates or self-loops — the form a sorted+deduped
    /// edge scan produces. Equal to calling [`UGraph::add_edge`] per pair
    /// (adjacency lists come out in the identical order), but allocates each
    /// adjacency list at its exact final size and bulk-builds the edge set
    /// instead of paying one B-tree insert per edge.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions only) when the input is not strictly sorted
    /// `(min, max)` pairs in range.
    pub fn from_sorted_unique_edges(n: usize, edges: Vec<(usize, usize)>) -> Self {
        debug_assert!(edges.iter().all(|&(a, b)| a < b && b < n), "edges must be in-range (min, max) pairs");
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must be strictly ascending");
        let mut deg = vec![0usize; n];
        for &(a, b) in &edges {
            deg[a] += 1;
            deg[b] += 1;
        }
        let mut adj: Vec<Vec<usize>> = deg.into_iter().map(Vec::with_capacity).collect();
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        UGraph { n, edges: edges.into_iter().collect(), adj }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge; self-loops and duplicates are ignored.
    /// Returns `true` when the edge was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics when either endpoint is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "edge ({a},{b}) out of range (n={})", self.n);
        if a == b {
            return false;
        }
        let key = (a.min(b), a.max(b));
        if self.edges.insert(key) {
            self.adj[a].push(b);
            self.adj[b].push(a);
            true
        } else {
            false
        }
    }

    /// `true` when `a` and `b` are adjacent.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a != b && self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Iterator over edges as `(min, max)` pairs in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Dense row-major adjacency matrix (`n*n` entries of 0.0/1.0).
    pub fn adjacency_rowmajor(&self) -> Vec<f64> {
        let mut a = vec![0.0; self.n * self.n];
        for &(u, v) in &self.edges {
            a[u * self.n + v] = 1.0;
            a[v * self.n + u] = 1.0;
        }
        a
    }

    /// Sparse CSR adjacency (both `(u,v)` and `(v,u)` entries, value 1.0).
    ///
    /// Costs O(n + m) — unlike [`UGraph::adjacency_rowmajor`] there is no
    /// O(n²) materialization, which is what makes per-step graph rebuilds
    /// cheap at N=500.
    pub fn adjacency_csr(&self) -> CsrAdj {
        let mut entries = Vec::with_capacity(2 * self.edges.len());
        for &(u, v) in &self.edges {
            entries.push((u, v, 1.0));
            entries.push((v, u, 1.0));
        }
        CsrAdj::from_entries(self.n, self.n, &entries)
    }

    /// Row-normalized sparse adjacency `D⁻¹A` (mean aggregation).
    pub fn adjacency_norm_csr(&self) -> CsrAdj {
        self.adjacency_csr().row_normalized()
    }

    /// The edge delta from `self` to `next`: edges gained and lost, each as
    /// sorted `(min, max)` lists. A single merge walk over the two sorted
    /// edge sets — O(m + m') regardless of how different the graphs are.
    ///
    /// # Panics
    ///
    /// Panics when the node counts differ.
    pub fn edge_delta(&self, next: &UGraph) -> EdgeDelta {
        assert_eq!(self.n, next.n, "edge_delta requires equal node counts");
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let mut old = self.edges().peekable();
        let mut new = next.edges().peekable();
        loop {
            match (old.peek(), new.peek()) {
                (Some(&eo), Some(&en)) => match eo.cmp(&en) {
                    std::cmp::Ordering::Less => {
                        removed.push(eo);
                        old.next();
                    }
                    std::cmp::Ordering::Greater => {
                        added.push(en);
                        new.next();
                    }
                    std::cmp::Ordering::Equal => {
                        old.next();
                        new.next();
                    }
                },
                (Some(&eo), None) => {
                    removed.push(eo);
                    old.next();
                }
                (None, Some(&en)) => {
                    added.push(en);
                    new.next();
                }
                (None, None) => break,
            }
        }
        EdgeDelta { added, removed }
    }

    /// Delta-updates a CSR adjacency: `prev` must be this graph's
    /// predecessor's [`UGraph::adjacency_csr`] (or an equal delta-maintained
    /// copy) and `delta` the [`UGraph::edge_delta`] from it to `self`. Only
    /// rows touched by the delta are rebuilt — bit-identical to a fresh
    /// `self.adjacency_csr()` because untouched rows are copied verbatim and
    /// rebuilt rows are the same sorted unit-valued neighbor lists a fresh
    /// build produces.
    pub fn adjacency_csr_from(&self, prev: &CsrAdj, delta: &EdgeDelta) -> CsrAdj {
        let rows = delta.touched_nodes();
        let mut nb: Vec<usize> = Vec::new();
        prev.with_rows_replaced(&rows, |r, out| {
            nb.clear();
            nb.extend_from_slice(self.neighbors(r));
            nb.sort_unstable();
            out.extend(nb.iter().map(|&c| (c, 1.0)));
        })
    }

    /// Delta-updates the row-normalized adjacency `D⁻¹A`; same contract as
    /// [`UGraph::adjacency_csr_from`] with `prev` the predecessor's
    /// [`UGraph::adjacency_norm_csr`]. Bit-identical to a fresh build: a
    /// fresh normalization divides unit values by the exact integer row sum,
    /// i.e. writes exactly `1.0 / degree`.
    pub fn adjacency_norm_csr_from(&self, prev: &CsrAdj, delta: &EdgeDelta) -> CsrAdj {
        let rows = delta.touched_nodes();
        let mut nb: Vec<usize> = Vec::new();
        prev.with_rows_replaced(&rows, |r, out| {
            nb.clear();
            nb.extend_from_slice(self.neighbors(r));
            nb.sort_unstable();
            let inv = 1.0 / nb.len() as f64;
            out.extend(nb.iter().map(|&c| (c, inv)));
        })
    }

    /// `true` when `set` is an independent set (no two members adjacent).
    pub fn is_independent_set(&self, set: &[usize]) -> bool {
        for (i, &u) in set.iter().enumerate() {
            for &v in &set[i + 1..] {
                if self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of edges whose endpoints are both in `set` (0 iff independent).
    pub fn conflict_count(&self, in_set: &[bool]) -> usize {
        self.edges.iter().filter(|&&(u, v)| in_set[u] && in_set[v]).count()
    }

    /// Connected components, each a sorted node list, ordered by smallest node.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// BFS distances from `src` (`usize::MAX` for unreachable nodes).
    pub fn bfs_distances(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        dist[src] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }
}

/// Edges gained and lost between two occlusion-graph snapshots — what MIA's
/// structural embeddings actually consume (A_t − A_{t−1} is exactly
/// `added − removed`), and the input to the delta-aware CSR update path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Edges present in the successor but not the predecessor, sorted
    /// `(min, max)` pairs.
    pub added: Vec<(usize, usize)>,
    /// Edges present in the predecessor but not the successor, sorted
    /// `(min, max)` pairs.
    pub removed: Vec<(usize, usize)>,
}

impl EdgeDelta {
    /// `true` when the two snapshots have identical edge sets.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of changed edges.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Every node incident to a changed edge, sorted ascending, deduped —
    /// the rows a delta-maintained adjacency operator must rebuild.
    pub fn touched_nodes(&self) -> Vec<usize> {
        let nodes: BTreeSet<usize> =
            self.added.iter().chain(self.removed.iter()).flat_map(|&(a, b)| [a, b]).collect();
        nodes.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> UGraph {
        UGraph::from_edges(3, [(0, 1), (1, 2)])
    }

    #[test]
    fn add_edge_dedups_and_rejects_loops() {
        let mut g = UGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert!(!g.add_edge(2, 2));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = path3();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn adjacency_matrix_is_symmetric_zero_diagonal() {
        let g = path3();
        let a = g.adjacency_rowmajor();
        for i in 0..3 {
            assert_eq!(a[i * 3 + i], 0.0);
            for j in 0..3 {
                assert_eq!(a[i * 3 + j], a[j * 3 + i]);
            }
        }
        assert_eq!(a.iter().sum::<f64>(), 4.0); // 2 edges × 2 entries
    }

    #[test]
    fn csr_adjacency_matches_dense() {
        let g = UGraph::from_edges(4, [(0, 1), (1, 2), (0, 3)]);
        let csr = g.adjacency_csr();
        assert_eq!(csr.nnz(), 6);
        assert_eq!(csr.to_dense().into_vec(), g.adjacency_rowmajor());

        let norm = g.adjacency_norm_csr();
        let d = norm.to_dense();
        for r in 0..4 {
            let s: f64 = d.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r} sums to {s}");
        }
        // node 0 has degree 2 → each neighbor entry is 1/2
        assert!((d[(0, 1)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn independence_checks() {
        let g = path3();
        assert!(g.is_independent_set(&[0, 2]));
        assert!(!g.is_independent_set(&[0, 1]));
        assert!(g.is_independent_set(&[]));
        assert_eq!(g.conflict_count(&[true, true, true]), 2);
        assert_eq!(g.conflict_count(&[true, false, true]), 0);
    }

    #[test]
    fn components_and_bfs() {
        let g = UGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4]]);
        let d = g.bfs_distances(0);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        UGraph::new(2).add_edge(0, 5);
    }

    #[test]
    fn edge_delta_partitions_the_symmetric_difference() {
        let a = UGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let b = UGraph::from_edges(5, [(1, 2), (2, 3), (0, 4)]);
        let d = a.edge_delta(&b);
        assert_eq!(d.added, vec![(0, 4), (2, 3)]);
        assert_eq!(d.removed, vec![(0, 1), (3, 4)]);
        assert_eq!(d.touched_nodes(), vec![0, 1, 2, 3, 4]);
        assert_eq!(d.len(), 4);
        assert!(a.edge_delta(&a).is_empty());
    }

    #[test]
    fn delta_maintained_csr_equals_fresh_builds_bitwise() {
        // walk a sequence of graphs, maintaining both operators by delta;
        // every step must equal the fresh build exactly (PartialEq compares
        // the full CSR layout, not just the math)
        let snapshots = [
            UGraph::from_edges(6, [(0, 1), (2, 3)]),
            UGraph::from_edges(6, [(0, 1), (2, 3), (1, 4), (4, 5)]),
            UGraph::from_edges(6, [(2, 3), (4, 5), (0, 5)]),
            UGraph::new(6),
            UGraph::from_edges(6, [(0, 2)]),
        ];
        let mut csr = snapshots[0].adjacency_csr();
        let mut norm = snapshots[0].adjacency_norm_csr();
        for w in snapshots.windows(2) {
            let delta = w[0].edge_delta(&w[1]);
            csr = w[1].adjacency_csr_from(&csr, &delta);
            norm = w[1].adjacency_norm_csr_from(&norm, &delta);
            assert_eq!(csr, w[1].adjacency_csr());
            assert_eq!(norm, w[1].adjacency_norm_csr());
        }
    }
}
