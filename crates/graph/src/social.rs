//! Weighted social networks `G = (V, E)`.
//!
//! The AFTER problem consumes a social graph twice: preference utilities
//! `p(v,w)` are estimated from structural similarity (a stand-in for the
//! pre-trained personalized recommenders the paper cites), and social
//! presence utilities `s(v,w)` come from tie strength.

use std::collections::HashMap;

/// A weighted undirected social network over users `0..n`.
#[derive(Debug, Clone, Default)]
pub struct SocialGraph {
    n: usize,
    adj: Vec<Vec<(usize, f64)>>,
    weights: HashMap<(usize, usize), f64>,
}

impl SocialGraph {
    /// An edgeless social network on `n` users.
    pub fn new(n: usize) -> Self {
        SocialGraph { n, adj: vec![Vec::new(); n], weights: HashMap::new() }
    }

    /// Number of users.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of ties.
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    /// Adds (or overwrites) a tie with strength `w ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_tie(&mut self, a: usize, b: usize, w: f64) {
        assert!(a < self.n && b < self.n, "tie ({a},{b}) out of range");
        assert_ne!(a, b, "self-ties are not allowed");
        let key = (a.min(b), a.max(b));
        if self.weights.insert(key, w).is_none() {
            self.adj[a].push((b, w));
            self.adj[b].push((a, w));
        } else {
            for slot in self.adj[a].iter_mut() {
                if slot.0 == b {
                    slot.1 = w;
                }
            }
            for slot in self.adj[b].iter_mut() {
                if slot.0 == a {
                    slot.1 = w;
                }
            }
        }
    }

    /// Tie strength between two users (0 when no tie exists).
    pub fn tie_strength(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        *self.weights.get(&(a.min(b), a.max(b))).unwrap_or(&0.0)
    }

    /// `true` when a tie exists.
    pub fn are_friends(&self, a: usize, b: usize) -> bool {
        self.tie_strength(a, b) > 0.0
    }

    /// Neighbors with their tie strengths.
    pub fn ties(&self, v: usize) -> &[(usize, f64)] {
        &self.adj[v]
    }

    /// Degree (number of ties) of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Number of common friends between two users.
    pub fn common_neighbors(&self, a: usize, b: usize) -> usize {
        let set: std::collections::HashSet<usize> = self.adj[a].iter().map(|&(w, _)| w).collect();
        self.adj[b].iter().filter(|&&(w, _)| set.contains(&w)).count()
    }

    /// Adamic–Adar similarity: `Σ_{z ∈ N(a) ∩ N(b)} 1 / ln(deg(z))`.
    ///
    /// A classical structural-similarity score; we use it as our stand-in
    /// "pre-trained personalized recommender" signal.
    pub fn adamic_adar(&self, a: usize, b: usize) -> f64 {
        let set: std::collections::HashSet<usize> = self.adj[a].iter().map(|&(w, _)| w).collect();
        self.adj[b]
            .iter()
            .filter(|&&(w, _)| set.contains(&w))
            .map(|&(w, _)| {
                let d = self.degree(w) as f64;
                if d > 1.0 {
                    1.0 / d.ln()
                } else {
                    // degree-1 hubs contribute the maximum score used by
                    // common Adamic–Adar implementations
                    1.0 / (2.0_f64).ln()
                }
            })
            .sum()
    }

    /// Jaccard similarity of neighborhoods.
    pub fn jaccard(&self, a: usize, b: usize) -> f64 {
        let sa: std::collections::HashSet<usize> = self.adj[a].iter().map(|&(w, _)| w).collect();
        let sb: std::collections::HashSet<usize> = self.adj[b].iter().map(|&(w, _)| w).collect();
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// BFS hop distances from `src` (`usize::MAX` when unreachable).
    pub fn hop_distances(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        dist[src] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(v) = queue.pop_front() {
            for &(w, _) in &self.adj[v] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Degree distribution histogram: `hist[d]` = number of nodes of degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max_d = (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0);
        let mut hist = vec![0usize; max_d + 1];
        for v in 0..self.n {
            hist[self.degree(v)] += 1;
        }
        hist
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.n as f64
        }
    }

    /// Global clustering coefficient (transitivity):
    /// `3 × #triangles / #connected-triples`.
    pub fn transitivity(&self) -> f64 {
        let mut triangles = 0usize;
        let mut triples = 0usize;
        for v in 0..self.n {
            let d = self.degree(v);
            triples += d * d.saturating_sub(1) / 2;
            let nbrs: Vec<usize> = self.adj[v].iter().map(|&(w, _)| w).collect();
            for i in 0..nbrs.len() {
                for j in i + 1..nbrs.len() {
                    if self.are_friends(nbrs[i], nbrs[j]) {
                        triangles += 1;
                    }
                }
            }
        }
        // every triangle is counted once per corner = 3 times total
        if triples == 0 {
            0.0
        } else {
            triangles as f64 / triples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_leaf() -> SocialGraph {
        // 0-1-2 triangle, 3 hangs off 0
        let mut g = SocialGraph::new(4);
        g.add_tie(0, 1, 0.9);
        g.add_tie(1, 2, 0.8);
        g.add_tie(0, 2, 0.7);
        g.add_tie(0, 3, 0.5);
        g
    }

    #[test]
    fn tie_strength_symmetric_and_zero_for_strangers() {
        let g = triangle_plus_leaf();
        assert_eq!(g.tie_strength(0, 1), 0.9);
        assert_eq!(g.tie_strength(1, 0), 0.9);
        assert_eq!(g.tie_strength(1, 3), 0.0);
        assert_eq!(g.tie_strength(2, 2), 0.0);
        assert!(g.are_friends(0, 3));
        assert!(!g.are_friends(1, 3));
    }

    #[test]
    fn overwrite_updates_both_directions() {
        let mut g = triangle_plus_leaf();
        g.add_tie(1, 0, 0.1);
        assert_eq!(g.tie_strength(0, 1), 0.1);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.ties(0).iter().find(|&&(w, _)| w == 1).unwrap().1, 0.1);
        assert_eq!(g.ties(1).iter().find(|&&(w, _)| w == 0).unwrap().1, 0.1);
    }

    #[test]
    fn common_neighbors_and_similarity() {
        let g = triangle_plus_leaf();
        assert_eq!(g.common_neighbors(1, 2), 1); // node 0
        assert_eq!(g.common_neighbors(1, 3), 1); // node 0
        assert!(g.adamic_adar(1, 2) > 0.0);
        assert_eq!(g.adamic_adar(3, 3), g.adamic_adar(3, 3)); // deterministic
        let j = g.jaccard(1, 2);
        // N(1) = {0,2}, N(2) = {0,1}; intersection {0}, union {0,1,2}
        assert!((j - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hop_distances_work() {
        let g = triangle_plus_leaf();
        let d = g.hop_distances(3);
        assert_eq!(d, vec![1, 2, 2, 0]);
    }

    #[test]
    fn transitivity_of_triangle_is_one() {
        let mut g = SocialGraph::new(3);
        g.add_tie(0, 1, 1.0);
        g.add_tie(1, 2, 1.0);
        g.add_tie(0, 2, 1.0);
        assert!((g.transitivity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transitivity_of_star_is_zero() {
        let mut g = SocialGraph::new(4);
        g.add_tie(0, 1, 1.0);
        g.add_tie(0, 2, 1.0);
        g.add_tie(0, 3, 1.0);
        assert_eq!(g.transitivity(), 0.0);
    }

    #[test]
    fn degree_stats() {
        let g = triangle_plus_leaf();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.mean_degree(), 2.0);
        let hist = g.degree_histogram();
        assert_eq!(hist[1], 1); // leaf
        assert_eq!(hist[2], 2);
        assert_eq!(hist[3], 1);
    }

    #[test]
    #[should_panic(expected = "self-ties")]
    fn self_tie_panics() {
        SocialGraph::new(2).add_tie(1, 1, 0.5);
    }
}
