//! Maximum Weighted Independent Set solvers (paper Def. 5).
//!
//! The AFTER hardness proof (Thm. 1) reduces MWIS on geometric intersection
//! graphs to a single-step AFTER instance. These solvers serve three roles:
//!
//! * `mwis_exact` — a branch-and-bound oracle for small graphs, used in tests
//!   and to report optimality gaps of the learned recommenders.
//! * `mwis_greedy` — the classical `w(v)/(deg(v)+1)` greedy, a cheap
//!   approximation that also seeds the local search.
//! * `local_search_improve` — (1,2)-swap improvement.

use crate::ugraph::UGraph;

/// Result of an MWIS computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MwisSolution {
    /// Chosen nodes, sorted ascending.
    pub nodes: Vec<usize>,
    /// Total weight of the chosen nodes.
    pub weight: f64,
}

fn solution(g: &UGraph, mut nodes: Vec<usize>, weights: &[f64]) -> MwisSolution {
    nodes.sort_unstable();
    debug_assert!(g.is_independent_set(&nodes));
    let weight = nodes.iter().map(|&v| weights[v]).sum();
    MwisSolution { nodes, weight }
}

/// Exact MWIS by branch-and-bound with a remaining-weight upper bound.
///
/// Exponential in the worst case; intended for graphs of a few dozen nodes
/// (occlusion graphs are sparse, so it usually explores far less).
///
/// # Panics
///
/// Panics when `weights.len() != g.node_count()` or any weight is negative
/// (negative-weight nodes can simply be dropped by the caller).
pub fn mwis_exact(g: &UGraph, weights: &[f64]) -> MwisSolution {
    assert_eq!(weights.len(), g.node_count(), "weights length mismatch");
    assert!(weights.iter().all(|&w| w >= 0.0), "weights must be non-negative");
    let n = g.node_count();

    // Order nodes by decreasing weight so good solutions are found early and
    // the bound prunes aggressively.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).unwrap());

    // suffix_weight[i] = total weight of order[i..]
    let mut suffix_weight = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix_weight[i] = suffix_weight[i + 1] + weights[order[i]];
    }

    struct Ctx<'a> {
        g: &'a UGraph,
        weights: &'a [f64],
        order: &'a [usize],
        suffix: &'a [f64],
        best: Vec<usize>,
        best_weight: f64,
    }

    fn branch(ctx: &mut Ctx<'_>, idx: usize, chosen: &mut Vec<usize>, weight: f64, blocked: &mut [bool]) {
        if weight > ctx.best_weight {
            ctx.best_weight = weight;
            ctx.best = chosen.clone();
        }
        if idx >= ctx.order.len() || weight + ctx.suffix[idx] <= ctx.best_weight {
            return;
        }
        let v = ctx.order[idx];
        // Branch 1: take v if allowed.
        if !blocked[v] && ctx.weights[v] > 0.0 {
            let newly: Vec<usize> = ctx.g.neighbors(v).iter().copied().filter(|&u| !blocked[u]).collect();
            for &u in &newly {
                blocked[u] = true;
            }
            chosen.push(v);
            branch(ctx, idx + 1, chosen, weight + ctx.weights[v], blocked);
            chosen.pop();
            for &u in &newly {
                blocked[u] = false;
            }
        }
        // Branch 2: skip v.
        branch(ctx, idx + 1, chosen, weight, blocked);
    }

    let mut ctx =
        Ctx { g, weights, order: &order, suffix: &suffix_weight, best: Vec::new(), best_weight: 0.0 };
    let mut blocked = vec![false; n];
    branch(&mut ctx, 0, &mut Vec::new(), 0.0, &mut blocked);
    let best = ctx.best;
    solution(g, best, weights)
}

/// Greedy MWIS: repeatedly take the remaining node maximizing
/// `w(v) / (deg_remaining(v) + 1)` and delete its neighborhood.
///
/// Guarantees `Σ w(v)/(deg(v)+1)` total weight (weighted Turán bound).
pub fn mwis_greedy(g: &UGraph, weights: &[f64]) -> MwisSolution {
    assert_eq!(weights.len(), g.node_count(), "weights length mismatch");
    let n = g.node_count();
    let mut alive = vec![true; n];
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut chosen = Vec::new();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..n {
            if !alive[v] || weights[v] <= 0.0 {
                continue;
            }
            let score = weights[v] / (deg[v] as f64 + 1.0);
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((v, score));
            }
        }
        let Some((v, _)) = best else { break };
        chosen.push(v);
        alive[v] = false;
        for &u in g.neighbors(v) {
            if alive[u] {
                alive[u] = false;
                for &w in g.neighbors(u) {
                    deg[w] = deg[w].saturating_sub(1);
                }
            }
        }
    }
    solution(g, chosen, weights)
}

/// Improves an independent set with (1,2)-swaps until a local optimum:
/// try removing one chosen node and inserting up to two of its now-free
/// non-adjacent neighbors, plus plain insertions of free nodes.
pub fn local_search_improve(g: &UGraph, weights: &[f64], start: &MwisSolution) -> MwisSolution {
    assert_eq!(weights.len(), g.node_count(), "weights length mismatch");
    let n = g.node_count();
    let mut in_set = vec![false; n];
    for &v in &start.nodes {
        in_set[v] = true;
    }

    let conflicts =
        |in_set: &[bool], v: usize| -> usize { g.neighbors(v).iter().filter(|&&u| in_set[u]).count() };

    let mut improved = true;
    while improved {
        improved = false;
        // plain insertions
        for v in 0..n {
            if !in_set[v] && weights[v] > 0.0 && conflicts(&in_set, v) == 0 {
                in_set[v] = true;
                improved = true;
            }
        }
        // (1,2)-swaps
        for v in 0..n {
            if !in_set[v] {
                continue;
            }
            in_set[v] = false;
            // candidates blocked only by v
            let cands: Vec<usize> = (0..n)
                .filter(|&u| !in_set[u] && u != v && weights[u] > 0.0 && conflicts(&in_set, u) == 0)
                .collect();
            let mut best_pair: Option<(f64, usize, Option<usize>)> = None;
            for (i, &a) in cands.iter().enumerate() {
                let single = weights[a];
                if best_pair.is_none_or(|(w, _, _)| single > w) {
                    best_pair = Some((single, a, None));
                }
                for &b in &cands[i + 1..] {
                    if !g.has_edge(a, b) {
                        let pair = weights[a] + weights[b];
                        if best_pair.is_none_or(|(w, _, _)| pair > w) {
                            best_pair = Some((pair, a, Some(b)));
                        }
                    }
                }
            }
            match best_pair {
                Some((w, a, b)) if w > weights[v] + 1e-12 => {
                    in_set[a] = true;
                    if let Some(b) = b {
                        in_set[b] = true;
                    }
                    improved = true;
                }
                _ => in_set[v] = true, // revert
            }
        }
    }

    let chosen: Vec<usize> = (0..n).filter(|&v| in_set[v]).collect();
    solution(g, chosen, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> UGraph {
        UGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn exact_on_path_alternates() {
        // unit weights on a path of 5: optimum is {0,2,4} with weight 3
        let g = path(5);
        let sol = mwis_exact(&g, &[1.0; 5]);
        assert_eq!(sol.weight, 3.0);
        assert_eq!(sol.nodes, vec![0, 2, 4]);
    }

    #[test]
    fn exact_prefers_heavy_middle() {
        // path 0-1-2 with weights 1, 10, 1 → take {1}
        let g = path(3);
        let sol = mwis_exact(&g, &[1.0, 10.0, 1.0]);
        assert_eq!(sol.nodes, vec![1]);
        assert_eq!(sol.weight, 10.0);
    }

    #[test]
    fn exact_on_triangle_takes_heaviest() {
        let g = UGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let sol = mwis_exact(&g, &[2.0, 3.0, 1.0]);
        assert_eq!(sol.nodes, vec![1]);
    }

    #[test]
    fn exact_on_edgeless_takes_all_positive() {
        let g = UGraph::new(4);
        let sol = mwis_exact(&g, &[1.0, 0.0, 2.0, 3.0]);
        assert_eq!(sol.nodes, vec![0, 2, 3]);
        assert_eq!(sol.weight, 6.0);
    }

    #[test]
    fn greedy_yields_valid_independent_set() {
        let g = UGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let sol = mwis_greedy(&g, &w);
        assert!(g.is_independent_set(&sol.nodes));
        assert!(sol.weight > 0.0);
    }

    #[test]
    fn greedy_never_beats_exact_and_local_search_closes_gap() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let n = 12;
            let mut g = UGraph::new(n);
            for a in 0..n {
                for b in a + 1..n {
                    if rng.gen::<f64>() < 0.3 {
                        g.add_edge(a, b);
                    }
                }
            }
            let w: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let exact = mwis_exact(&g, &w);
            let greedy = mwis_greedy(&g, &w);
            let improved = local_search_improve(&g, &w, &greedy);
            assert!(greedy.weight <= exact.weight + 1e-9, "trial {trial}");
            assert!(improved.weight + 1e-9 >= greedy.weight, "trial {trial}");
            assert!(improved.weight <= exact.weight + 1e-9, "trial {trial}");
            assert!(g.is_independent_set(&improved.nodes));
        }
    }

    #[test]
    fn local_search_escapes_bad_single_choice() {
        // star: center heavy-ish but two leaves together beat it
        let g = UGraph::from_edges(3, [(0, 1), (0, 2)]);
        let start = MwisSolution { nodes: vec![0], weight: 1.5 };
        let improved = local_search_improve(&g, &[1.5, 1.0, 1.0], &start);
        assert_eq!(improved.nodes, vec![1, 2]);
        assert_eq!(improved.weight, 2.0);
    }

    #[test]
    fn zero_weight_nodes_are_not_selected() {
        let g = UGraph::new(3);
        let sol = mwis_greedy(&g, &[0.0, 0.0, 1.0]);
        assert_eq!(sol.nodes, vec![2]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        mwis_exact(&UGraph::new(1), &[-1.0]);
    }
}
