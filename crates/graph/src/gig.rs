//! Geometric intersection graphs (paper Def. 6) and the GIG → DOG reduction
//! (Lemma 1) underlying the NP-hardness proof (Thm. 1).
//!
//! A unit-disk graph is the simplest GIG on which MWIS is already NP-hard;
//! we provide a random unit-disk instance generator plus the transformation
//! of any GIG into a single-step dynamic occlusion graph, mirroring the
//! paper's proof construction. Tests and benches use these to validate the
//! solvers and to demonstrate the reduction concretely.

use rand::Rng;

use crate::geom::Point2;
use crate::occlusion::DynamicOcclusionGraph;
use crate::ugraph::UGraph;

/// A set of disks in the plane with its intersection graph.
#[derive(Debug, Clone)]
pub struct DiskGig {
    /// Disk centers.
    pub centers: Vec<Point2>,
    /// Disk radii (all equal for a *unit*-disk graph).
    pub radii: Vec<f64>,
    /// The intersection graph: vertices are disks, edges are non-empty
    /// pairwise intersections.
    pub graph: UGraph,
}

impl DiskGig {
    /// Builds the intersection graph from explicit disks.
    pub fn from_disks(centers: Vec<Point2>, radii: Vec<f64>) -> Self {
        assert_eq!(centers.len(), radii.len(), "centers/radii length mismatch");
        assert!(radii.iter().all(|&r| r > 0.0), "radii must be positive");
        let n = centers.len();
        let mut graph = UGraph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                let touch = radii[i] + radii[j];
                if centers[i].distance_sq(centers[j]) <= touch * touch {
                    graph.add_edge(i, j);
                }
            }
        }
        DiskGig { centers, radii, graph }
    }

    /// A random unit-disk graph: `n` disks of radius `radius` with centers
    /// uniform in a `side × side` square.
    pub fn random_unit_disks(n: usize, side: f64, radius: f64, rng: &mut impl Rng) -> Self {
        let centers =
            (0..n).map(|_| Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side))).collect();
        DiskGig::from_disks(centers, vec![radius; n])
    }

    /// Number of disks.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// `true` when the instance has no disks.
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }
}

/// Transforms a GIG into a dynamic occlusion graph with `T = 0` (Lemma 1):
/// the plane becomes a panoramic scene for a new target user appended as the
/// last, isolated node; the GIG's intersection edges become the occlusion
/// edges at `t = 0`.
///
/// Returns the DOG and the index of the inserted target user.
pub fn gig_to_dog(gig: &UGraph) -> (DynamicOcclusionGraph, usize) {
    let n = gig.node_count();
    let mut g = UGraph::new(n + 1);
    for (a, b) in gig.edges() {
        g.add_edge(a, b);
    }
    // node `n` (the target) stays isolated by construction
    (DynamicOcclusionGraph::from_static_graphs(vec![g]), n)
}

/// Rescales arbitrary MWIS node weights into valid preference utilities
/// `(1-β)·p(v,w) ∈ [0,1]` exactly as in the proof of Thm. 1:
/// `W'(w) = (W(w) + W_min) / (W_max + W_min)`.
pub fn weights_to_preferences(weights: &[f64]) -> Vec<f64> {
    assert!(!weights.is_empty(), "need at least one weight");
    let min = weights.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = weights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let denom = max + min;
    weights
        .iter()
        .map(|&w| if denom.abs() < 1e-12 { 0.0 } else { ((w + min) / denom).clamp(0.0, 1.0) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mwis::{mwis_exact, mwis_greedy};
    use rand::SeedableRng;

    #[test]
    fn disks_intersect_iff_close() {
        let gig = DiskGig::from_disks(
            vec![Point2::new(0.0, 0.0), Point2::new(1.5, 0.0), Point2::new(10.0, 0.0)],
            vec![1.0, 1.0, 1.0],
        );
        assert!(gig.graph.has_edge(0, 1));
        assert!(!gig.graph.has_edge(0, 2));
        assert!(!gig.graph.has_edge(1, 2));
    }

    #[test]
    fn random_unit_disks_density_scales_with_radius() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sparse = DiskGig::random_unit_disks(50, 100.0, 0.5, &mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let dense = DiskGig::random_unit_disks(50, 100.0, 10.0, &mut rng);
        assert!(dense.graph.edge_count() > sparse.graph.edge_count());
    }

    #[test]
    fn gig_to_dog_preserves_edges_and_isolates_target() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let gig = DiskGig::random_unit_disks(20, 10.0, 1.0, &mut rng);
        let (dog, target) = gig_to_dog(&gig.graph);
        assert_eq!(dog.time_steps(), 1);
        assert_eq!(dog.node_count(), 21);
        assert_eq!(target, 20);
        assert_eq!(dog.at(0).degree(target), 0);
        for (a, b) in gig.graph.edges() {
            assert!(dog.at(0).has_edge(a, b));
        }
        assert_eq!(dog.at(0).edge_count(), gig.graph.edge_count());
    }

    #[test]
    fn weight_rescaling_lands_in_unit_interval_and_preserves_order() {
        let w = vec![3.0, 1.0, 7.0, 5.0];
        let p = weights_to_preferences(&w);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // order preserved
        assert!(p[2] > p[3] && p[3] > p[0] && p[0] > p[1]);
    }

    #[test]
    fn reduction_preserves_mwis_optimum() {
        // Solving MWIS on the GIG and on the DOG's static graph (restricted
        // to the original nodes) must coincide — the core of Thm. 1.
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let gig = DiskGig::random_unit_disks(14, 6.0, 1.0, &mut rng);
        let w: Vec<f64> = (0..14).map(|i| 1.0 + (i % 5) as f64).collect();
        let direct = mwis_exact(&gig.graph, &w);

        let (dog, target) = gig_to_dog(&gig.graph);
        let mut w2 = w.clone();
        w2.push(0.0); // the target user has no self-utility
        let via_dog = mwis_exact(dog.at(0), &w2);
        assert!((direct.weight - via_dog.weight).abs() < 1e-9);
        assert!(!via_dog.nodes.contains(&target) || w2[target] == 0.0);
    }

    #[test]
    fn greedy_gap_is_bounded_on_unit_disks() {
        // sanity: greedy achieves at least 40% of optimum on these instances
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..5 {
            let gig = DiskGig::random_unit_disks(18, 8.0, 1.2, &mut rng);
            let w = vec![1.0; 18];
            let opt = mwis_exact(&gig.graph, &w);
            let greedy = mwis_greedy(&gig.graph, &w);
            assert!(greedy.weight >= 0.4 * opt.weight);
        }
    }
}
