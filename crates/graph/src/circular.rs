//! Exact polynomial-time MWIS on **circular-arc graphs**.
//!
//! The paper's NP-hardness result (Thm. 1) holds for *general* geometric
//! intersection graphs; but the occlusion graphs its own converter produces
//! (§III-B) are circular-arc graphs, on which MWIS is solvable in
//! `O(k·n log n)` (k = arcs crossing a fixed cut). This module exploits that
//! structure:
//!
//! 1. fix the cut angle θ = 0;
//! 2. either no chosen arc crosses the cut — drop the crossing arcs and
//!    solve the remaining *interval* MWIS by the classic right-endpoint DP —
//! 3. or exactly one crossing arc `c` is chosen — include `c`, drop
//!    everything intersecting it, and solve the interval MWIS on the rest.
//!
//! This powers an *exact* myopic oracle for per-step AFTER payoffs, where
//! branch-and-bound would be exponential in the worst case.

use crate::geom::wrap_angle;
use crate::mwis::MwisSolution;
use crate::occlusion::ViewArc;

/// A circular arc `[start, end)` going counterclockwise; `start`/`end` are
/// angles in `[0, 2π)`. When `start > end` the arc crosses the cut at 0.
/// `full` marks arcs covering the whole circle (they intersect everything).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircArc {
    pub start: f64,
    pub end: f64,
    pub full: bool,
}

impl CircArc {
    /// Builds from a [`ViewArc`] (center ± half-width).
    pub fn from_view_arc(arc: &ViewArc) -> Self {
        if arc.half_width >= std::f64::consts::PI {
            return CircArc { start: 0.0, end: 0.0, full: true };
        }
        CircArc {
            start: wrap_angle(arc.center - arc.half_width),
            end: wrap_angle(arc.center + arc.half_width),
            full: false,
        }
    }

    /// `true` when the arc crosses (or touches) the cut angle 0.
    pub fn crosses_cut(&self) -> bool {
        self.full || self.start > self.end
    }

    /// Open-interval intersection test on the circle, consistent with
    /// [`ViewArc::intersects`] (touching endpoints do not intersect).
    pub fn intersects(&self, other: &CircArc) -> bool {
        if self.full || other.full {
            return true;
        }
        let segs_a = self.segments();
        let segs_b = other.segments();
        for &(s1, e1) in &segs_a {
            for &(s2, e2) in &segs_b {
                if s1 < e2 && s2 < e1 {
                    return true;
                }
            }
        }
        false
    }

    /// The arc as 1 or 2 linear segments on `[0, 2π)`.
    fn segments(&self) -> Vec<(f64, f64)> {
        if self.crosses_cut() {
            vec![(self.start, std::f64::consts::TAU), (0.0, self.end)]
        } else {
            vec![(self.start, self.end)]
        }
    }
}

/// Classic interval-MWIS DP on `(start, end, weight, original_index)`
/// tuples: sort by right endpoint; `dp[i] = max(dp[i-1], w_i + dp[p(i)])`.
fn interval_mwis(intervals: &[(f64, f64, f64, usize)]) -> (f64, Vec<usize>) {
    let mut items: Vec<&(f64, f64, f64, usize)> = intervals.iter().collect();
    items.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let n = items.len();
    if n == 0 {
        return (0.0, Vec::new());
    }
    // p(i): last interval j < i with end_j <= start_i (binary search works
    // because items are sorted by end)
    let pred = |i: usize| -> Option<usize> {
        let start_i = items[i].0;
        let mut lo = 0usize;
        let mut hi = i; // exclusive
        while lo < hi {
            let mid = (lo + hi) / 2;
            if items[mid].1 <= start_i {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.checked_sub(1)
    };

    let mut dp = vec![0.0_f64; n + 1];
    let mut take = vec![false; n];
    for i in 0..n {
        let skip = dp[i];
        let p = pred(i);
        let take_val = items[i].2 + p.map_or(0.0, |j| dp[j + 1]);
        if take_val > skip {
            dp[i + 1] = take_val;
            take[i] = true;
        } else {
            dp[i + 1] = skip;
        }
    }
    // backtrack
    let mut chosen = Vec::new();
    let mut i = n;
    while i > 0 {
        if take[i - 1] {
            chosen.push(items[i - 1].3);
            i = pred(i - 1).map_or(0, |j| j + 1);
        } else {
            i -= 1;
        }
    }
    (dp[n], chosen)
}

/// Exact MWIS over a set of circular arcs (`None` entries are absent nodes,
/// e.g. the target user). Only arcs with strictly positive weight are
/// considered. Returns the chosen original indices and total weight.
pub fn mwis_circular_arcs(arcs: &[Option<CircArc>], weights: &[f64]) -> MwisSolution {
    assert_eq!(arcs.len(), weights.len(), "arcs/weights length mismatch");
    let present: Vec<(usize, CircArc)> = arcs
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|arc| (i, arc)))
        .filter(|&(i, _)| weights[i] > 0.0)
        .collect();

    // Case 1: no chosen arc crosses the cut.
    let linear: Vec<(f64, f64, f64, usize)> = present
        .iter()
        .filter(|(_, a)| !a.crosses_cut())
        .map(|&(i, a)| (a.start, a.end, weights[i], i))
        .collect();
    let (mut best_w, mut best_set) = interval_mwis(&linear);

    // Case 2: exactly one crossing arc c is chosen.
    for &(ci, c) in present.iter().filter(|(_, a)| a.crosses_cut()) {
        if c.full {
            // a full-circle arc conflicts with everything: it stands alone
            if weights[ci] > best_w {
                best_w = weights[ci];
                best_set = vec![ci];
            }
            continue;
        }
        let rest: Vec<(f64, f64, f64, usize)> = present
            .iter()
            .filter(|&&(i, a)| i != ci && !a.crosses_cut() && !a.intersects(&c))
            .map(|&(i, a)| (a.start, a.end, weights[i], i))
            .collect();
        let (w, mut set) = interval_mwis(&rest);
        if w + weights[ci] > best_w {
            best_w = w + weights[ci];
            set.push(ci);
            best_set = set;
        }
    }

    best_set.sort_unstable();
    MwisSolution { nodes: best_set, weight: best_w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mwis::mwis_exact;
    use crate::ugraph::UGraph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn arc(center: f64, hw: f64) -> CircArc {
        CircArc::from_view_arc(&ViewArc { center: wrap_angle(center), half_width: hw, distance: 1.0 })
    }

    #[test]
    fn interval_dp_basic() {
        // three intervals: [0,2] w=1, [1,3] w=1, [2.5,4] w=1 → pick 1st + 3rd
        let items = vec![(0.0, 2.0, 1.0, 0), (1.0, 3.0, 1.0, 1), (2.5, 4.0, 1.0, 2)];
        let (w, mut set) = interval_mwis(&items);
        set.sort_unstable();
        assert_eq!(w, 2.0);
        assert_eq!(set, vec![0, 2]);
    }

    #[test]
    fn interval_dp_prefers_heavy_middle() {
        let items = vec![(0.0, 2.0, 1.0, 0), (1.0, 3.0, 5.0, 1), (3.5, 4.0, 1.0, 2)];
        let (w, set) = interval_mwis(&items);
        assert_eq!(w, 6.0);
        assert!(set.contains(&1) && set.contains(&2) && !set.contains(&0));
    }

    #[test]
    fn crossing_arc_is_detected() {
        assert!(arc(0.0, 0.3).crosses_cut()); // spans [-0.3, 0.3] through 0
        assert!(!arc(1.0, 0.3).crosses_cut());
        assert!(arc(0.0, std::f64::consts::PI).full);
    }

    #[test]
    fn intersection_matches_view_arc_semantics() {
        let a = ViewArc { center: 0.1, half_width: 0.2, distance: 1.0 };
        let b = ViewArc { center: std::f64::consts::TAU - 0.05, half_width: 0.2, distance: 1.0 };
        let c = ViewArc { center: 3.0, half_width: 0.2, distance: 1.0 };
        let (ca, cb, cc) =
            (CircArc::from_view_arc(&a), CircArc::from_view_arc(&b), CircArc::from_view_arc(&c));
        assert_eq!(a.intersects(&b), ca.intersects(&cb));
        assert_eq!(a.intersects(&c), ca.intersects(&cc));
        assert!(ca.intersects(&cb));
        assert!(!ca.intersects(&cc));
    }

    #[test]
    fn full_arc_stands_alone() {
        let arcs = vec![Some(arc(0.0, std::f64::consts::PI)), Some(arc(1.0, 0.1)), Some(arc(3.0, 0.1))];
        // full arc weight 5 beats the two independents (1 + 1)
        let sol = mwis_circular_arcs(&arcs, &[5.0, 1.0, 1.0]);
        assert_eq!(sol.nodes, vec![0]);
        // but loses when they outweigh it
        let sol = mwis_circular_arcs(&arcs, &[1.5, 1.0, 1.0]);
        assert_eq!(sol.nodes, vec![1, 2]);
    }

    #[test]
    fn none_entries_are_skipped() {
        let arcs = vec![None, Some(arc(1.0, 0.1)), None, Some(arc(3.0, 0.1))];
        let sol = mwis_circular_arcs(&arcs, &[9.0, 1.0, 9.0, 2.0]);
        assert_eq!(sol.nodes, vec![1, 3]);
        assert_eq!(sol.weight, 3.0);
    }

    #[test]
    fn matches_branch_and_bound_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..40 {
            let n = 14;
            let arcs: Vec<Option<CircArc>> = (0..n)
                .map(|_| Some(arc(rng.gen_range(0.0..std::f64::consts::TAU), rng.gen_range(0.05..0.9))))
                .collect();
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..2.0)).collect();

            // reference: build the intersection graph and run branch-and-bound
            let mut g = UGraph::new(n);
            for i in 0..n {
                for j in i + 1..n {
                    if arcs[i].unwrap().intersects(&arcs[j].unwrap()) {
                        g.add_edge(i, j);
                    }
                }
            }
            let reference = mwis_exact(&g, &weights);
            let fast = mwis_circular_arcs(&arcs, &weights);
            assert!(
                (fast.weight - reference.weight).abs() < 1e-9,
                "trial {trial}: fast {} vs reference {}",
                fast.weight,
                reference.weight
            );
            assert!(g.is_independent_set(&fast.nodes), "trial {trial}: invalid set");
        }
    }

    #[test]
    fn scales_to_large_instances() {
        // 400 arcs would be hopeless for branch-and-bound on dense circles;
        // the DP finishes instantly.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 400;
        let arcs: Vec<Option<CircArc>> = (0..n)
            .map(|_| Some(arc(rng.gen_range(0.0..std::f64::consts::TAU), rng.gen_range(0.02..0.3))))
            .collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
        let sol = mwis_circular_arcs(&arcs, &weights);
        assert!(sol.weight > 0.0);
        // validate independence against the pairwise test
        for (i, &a) in sol.nodes.iter().enumerate() {
            for &b in &sol.nodes[i + 1..] {
                assert!(!arcs[a].unwrap().intersects(&arcs[b].unwrap()));
            }
        }
    }
}
