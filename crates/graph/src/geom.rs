//! Planar geometry shared by the occlusion converter and the crowd simulator.
//!
//! The paper's occlusion-graph converter assumes a flat social XR space
//! (`τ ∈ {(x, 0, z)}`), so all geometry here is 2-D. `x` is "east" and `y`
//! here plays the role of the paper's `z` axis.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 2-D point / vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    pub x: f64,
    pub y: f64,
}

impl Point2 {
    /// Constructs a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin.
    pub fn zero() -> Self {
        Point2 { x: 0.0, y: 0.0 }
    }

    /// Dot product.
    pub fn dot(self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (`z` component of the 3-D cross product).
    pub fn cross(self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared distance to another point.
    pub fn distance_sq(self, other: Point2) -> f64 {
        (self - other).norm_sq()
    }

    /// Unit vector in the same direction; zero vector is returned unchanged.
    pub fn normalized(self) -> Point2 {
        let n = self.norm();
        if n > 1e-12 {
            self / n
        } else {
            Point2::zero()
        }
    }

    /// Angle of the vector from the positive x-axis, in `[0, 2π)`.
    pub fn angle(self) -> f64 {
        let a = self.y.atan2(self.x);
        if a < 0.0 {
            a + std::f64::consts::TAU
        } else {
            a
        }
    }

    /// Clamps the vector's norm to at most `max_norm`.
    pub fn clamp_norm(self, max_norm: f64) -> Point2 {
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            self * (max_norm / n)
        } else {
            self
        }
    }

    /// Perpendicular vector (rotated +90°).
    pub fn perp(self) -> Point2 {
        Point2 { x: -self.y, y: self.x }
    }

    /// Linear interpolation `self + t (other − self)`.
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        self + (other - self) * t
    }
}

impl Add for Point2 {
    type Output = Point2;
    fn add(self, o: Point2) -> Point2 {
        Point2::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    fn sub(self, o: Point2) -> Point2 {
        Point2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    fn mul(self, k: f64) -> Point2 {
        Point2::new(self.x * k, self.y * k)
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    fn div(self, k: f64) -> Point2 {
        Point2::new(self.x / k, self.y / k)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

/// Normalizes an angle into `[0, 2π)`.
pub fn wrap_angle(a: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut r = a % tau;
    if r < 0.0 {
        r += tau;
    }
    r
}

/// Absolute circular difference between two angles, in `[0, π]`.
pub fn angle_diff(a: f64, b: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let d = (wrap_angle(a) - wrap_angle(b)).abs();
    d.min(tau - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn vector_algebra() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(a - b, Point2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point2::new(1.5, -0.5));
        assert_eq!(-a, Point2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn norms_and_distances() {
        let a = Point2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.distance(Point2::zero()), 5.0);
        assert_eq!(a.distance_sq(Point2::zero()), 25.0);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Point2::zero().normalized(), Point2::zero());
    }

    #[test]
    fn angle_covers_all_quadrants() {
        assert!((Point2::new(1.0, 0.0).angle() - 0.0).abs() < 1e-12);
        assert!((Point2::new(0.0, 1.0).angle() - FRAC_PI_2).abs() < 1e-12);
        assert!((Point2::new(-1.0, 0.0).angle() - PI).abs() < 1e-12);
        assert!((Point2::new(0.0, -1.0).angle() - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn clamp_norm_limits_length() {
        let v = Point2::new(10.0, 0.0).clamp_norm(2.0);
        assert!((v.norm() - 2.0).abs() < 1e-12);
        let w = Point2::new(0.5, 0.0).clamp_norm(2.0);
        assert_eq!(w, Point2::new(0.5, 0.0));
    }

    #[test]
    fn perp_is_orthogonal() {
        let v = Point2::new(2.0, 5.0);
        assert_eq!(v.dot(v.perp()), 0.0);
    }

    #[test]
    fn wrap_and_diff() {
        assert!((wrap_angle(-FRAC_PI_2) - 3.0 * FRAC_PI_2).abs() < 1e-12);
        assert!((wrap_angle(TAU + 0.5) - 0.5).abs() < 1e-12);
        assert!((angle_diff(0.1, TAU - 0.1) - 0.2).abs() < 1e-12);
        assert!((angle_diff(0.0, PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(1.0, 2.0));
    }
}
