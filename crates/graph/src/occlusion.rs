//! Occlusion graphs and the circular-arc occlusion converter (paper §III-B).
//!
//! For a flat social XR space the converter places the target user `v` at the
//! center of a circle and computes, for every other user `w`, the arc `I_t^w`
//! that `w`'s body occupies in `v`'s 360-degree view. Two users are connected
//! in the *static occlusion graph* `O_t^v` exactly when their arcs intersect
//! (a circular-arc graph, plus `v` itself as an isolated node). A *dynamic
//! occlusion graph* (Def. 4) is the sequence of static graphs over
//! `t ∈ {0, …, T}`.

use crate::geom::{angle_diff, Point2};
use crate::ugraph::UGraph;

/// The arc a user occupies in the target's 360° view at one time step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewArc {
    /// Angular position of the user's center, in `[0, 2π)`.
    pub center: f64,
    /// Angular half-width of the occupied arc, in `[0, π]`.
    pub half_width: f64,
    /// Euclidean distance from the target.
    pub distance: f64,
}

impl ViewArc {
    /// `true` when two arcs overlap on the circle.
    pub fn intersects(&self, other: &ViewArc) -> bool {
        angle_diff(self.center, other.center) < self.half_width + other.half_width
    }
}

/// Converts user positions into occlusion arcs and occlusion graphs.
#[derive(Debug, Clone, Copy)]
pub struct OcclusionConverter {
    /// Physical body radius of an avatar, in meters. The paper's experiments
    /// use a 10 m² conferencing room; 0.25 m is a human-shoulder-scale value.
    pub body_radius: f64,
}

impl Default for OcclusionConverter {
    fn default() -> Self {
        OcclusionConverter { body_radius: 0.25 }
    }
}

impl OcclusionConverter {
    /// A converter with a custom body radius.
    pub fn new(body_radius: f64) -> Self {
        assert!(body_radius > 0.0, "body radius must be positive");
        OcclusionConverter { body_radius }
    }

    /// The view arc of user `w` as seen by the target at `target_pos`, or
    /// `None` when the two coincide (an arbitrarily wide arc would be
    /// meaningless; callers treat coincident users as occluding everything).
    pub fn arc(&self, target_pos: Point2, w_pos: Point2) -> Option<ViewArc> {
        let rel = w_pos - target_pos;
        let d = rel.norm();
        if d < 1e-9 {
            return None;
        }
        // When the body disk contains the viewer (d <= r) the arc spans the
        // whole circle.
        let half_width =
            if d <= self.body_radius { std::f64::consts::PI } else { (self.body_radius / d).asin() };
        Some(ViewArc { center: rel.angle(), half_width, distance: d })
    }

    /// Arcs for every user; `None` at the target index (and for coincident
    /// users).
    pub fn arcs(&self, target: usize, positions: &[Point2]) -> Vec<Option<ViewArc>> {
        positions
            .iter()
            .enumerate()
            .map(|(w, &p)| if w == target { None } else { self.arc(positions[target], p) })
            .collect()
    }

    /// The static occlusion graph `O_t^v` for the given positions: nodes are
    /// all users, the target is isolated, and two users are adjacent iff
    /// their arcs intersect.
    pub fn static_graph(&self, target: usize, positions: &[Point2]) -> UGraph {
        let arcs = self.arcs(target, positions);
        let n = positions.len();
        let mut g = UGraph::new(n);
        for i in 0..n {
            let Some(ai) = arcs[i] else { continue };
            for (j, aj) in arcs.iter().enumerate().skip(i + 1) {
                let Some(aj) = aj else { continue };
                if ai.intersects(aj) {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Visibility of each user given a display decision.
    ///
    /// `displayed[w]` says entity `w` appears on the target's viewport
    /// (either recommended, or physically present for an MR viewer). A
    /// displayed user `w` is *visible* (`1[v ⇒ w]` in the paper) iff no other
    /// displayed user overlaps `w`'s arc while standing strictly nearer to
    /// the viewer. Non-displayed users are never visible.
    pub fn visibility(&self, target: usize, positions: &[Point2], displayed: &[bool]) -> Vec<bool> {
        assert_eq!(positions.len(), displayed.len(), "displayed mask length mismatch");
        let arcs = self.arcs(target, positions);
        let n = positions.len();
        let mut visible = vec![false; n];
        for w in 0..n {
            if w == target || !displayed[w] {
                continue;
            }
            let Some(aw) = arcs[w] else {
                continue; // coincident with viewer: treated as not visible
            };
            let mut occluded = false;
            for u in 0..n {
                if u == w || u == target || !displayed[u] {
                    continue;
                }
                if let Some(au) = arcs[u] {
                    if au.distance < aw.distance && au.intersects(&aw) {
                        occluded = true;
                        break;
                    }
                }
            }
            visible[w] = !occluded;
        }
        visible
    }
}

/// A dynamic occlusion graph `O^v = (V, E^v, T)` — one static occlusion graph
/// per time step (Def. 4).
#[derive(Debug, Clone)]
pub struct DynamicOcclusionGraph {
    graphs: Vec<UGraph>,
    n: usize,
}

impl DynamicOcclusionGraph {
    /// Builds the DOG for `target` from a trajectory table:
    /// `trajectories[t][w]` is user `w`'s position at time `t`.
    pub fn from_trajectories(
        converter: &OcclusionConverter,
        target: usize,
        trajectories: &[Vec<Point2>],
    ) -> Self {
        assert!(!trajectories.is_empty(), "need at least one time step");
        let n = trajectories[0].len();
        let graphs = trajectories
            .iter()
            .map(|positions| {
                assert_eq!(positions.len(), n, "inconsistent user count across time steps");
                converter.static_graph(target, positions)
            })
            .collect();
        DynamicOcclusionGraph { graphs, n }
    }

    /// Wraps pre-built static graphs (used by the GIG → DOG reduction).
    pub fn from_static_graphs(graphs: Vec<UGraph>) -> Self {
        assert!(!graphs.is_empty(), "need at least one static graph");
        let n = graphs[0].node_count();
        assert!(graphs.iter().all(|g| g.node_count() == n), "inconsistent node counts");
        DynamicOcclusionGraph { graphs, n }
    }

    /// Number of time steps `T + 1`.
    pub fn time_steps(&self) -> usize {
        self.graphs.len()
    }

    /// Number of users.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The static occlusion graph at time `t`.
    pub fn at(&self, t: usize) -> &UGraph {
        &self.graphs[t]
    }

    /// Number of edges that differ between consecutive static graphs —
    /// quantifies the "gradual change" assumption that PDR exploits.
    pub fn edge_churn(&self, t: usize) -> usize {
        if t == 0 {
            return self.graphs[0].edge_count();
        }
        let prev: std::collections::BTreeSet<_> = self.graphs[t - 1].edges().collect();
        let cur: std::collections::BTreeSet<_> = self.graphs[t].edges().collect();
        prev.symmetric_difference(&cur).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three users on a line east of the target: 1 and 2 behind each other,
    /// 3 far off to the north.
    fn line_positions() -> Vec<Point2> {
        vec![
            Point2::new(0.0, 0.0),  // target 0
            Point2::new(1.0, 0.0),  // 1: east, near
            Point2::new(2.0, 0.05), // 2: east, behind 1 (arcs overlap)
            Point2::new(0.0, 3.0),  // 3: north, clear
        ]
    }

    #[test]
    fn arc_geometry() {
        let conv = OcclusionConverter::new(0.25);
        let a = conv.arc(Point2::zero(), Point2::new(1.0, 0.0)).unwrap();
        assert!((a.center - 0.0).abs() < 1e-12);
        assert!((a.distance - 1.0).abs() < 1e-12);
        assert!((a.half_width - (0.25_f64).asin()).abs() < 1e-12);
        // farther user → narrower arc
        let b = conv.arc(Point2::zero(), Point2::new(4.0, 0.0)).unwrap();
        assert!(b.half_width < a.half_width);
    }

    #[test]
    fn coincident_user_has_no_arc() {
        let conv = OcclusionConverter::default();
        assert!(conv.arc(Point2::zero(), Point2::zero()).is_none());
    }

    #[test]
    fn touching_viewer_spans_half_circle_or_more() {
        let conv = OcclusionConverter::new(0.5);
        let a = conv.arc(Point2::zero(), Point2::new(0.3, 0.0)).unwrap();
        assert_eq!(a.half_width, std::f64::consts::PI);
    }

    #[test]
    fn arcs_wraparound_intersection() {
        // arcs straddling the 0/2π seam must still intersect
        let a = ViewArc { center: 0.05, half_width: 0.2, distance: 1.0 };
        let b = ViewArc { center: std::f64::consts::TAU - 0.05, half_width: 0.2, distance: 1.0 };
        assert!(a.intersects(&b));
        let c = ViewArc { center: std::f64::consts::PI, half_width: 0.2, distance: 1.0 };
        assert!(!a.intersects(&c));
    }

    #[test]
    fn static_graph_connects_aligned_users_only() {
        let conv = OcclusionConverter::new(0.25);
        let g = conv.static_graph(0, &line_positions());
        assert!(g.has_edge(1, 2), "in-line users must be occlusion-adjacent");
        assert!(!g.has_edge(1, 3));
        assert!(!g.has_edge(2, 3));
        assert_eq!(g.degree(0), 0, "target is isolated");
    }

    #[test]
    fn visibility_nearer_user_occludes_farther() {
        let conv = OcclusionConverter::new(0.25);
        let pos = line_positions();
        let vis = conv.visibility(0, &pos, &[false, true, true, true]);
        assert!(!vis[0], "target is never its own rendered user");
        assert!(vis[1], "front user is visible");
        assert!(!vis[2], "rear user is occluded by the front user");
        assert!(vis[3], "clear user is visible");
    }

    #[test]
    fn visibility_respects_display_mask() {
        let conv = OcclusionConverter::new(0.25);
        let pos = line_positions();
        // hide the blocker: rear user becomes visible
        let vis = conv.visibility(0, &pos, &[false, false, true, true]);
        assert!(!vis[1]);
        assert!(vis[2]);
    }

    #[test]
    fn dynamic_graph_tracks_motion() {
        let conv = OcclusionConverter::new(0.25);
        // t=0: user 2 hides behind user 1. t=1: user 2 steps far north.
        let t0 = line_positions();
        let mut t1 = line_positions();
        t1[2] = Point2::new(-2.0, -2.0);
        let dog = DynamicOcclusionGraph::from_trajectories(&conv, 0, &[t0, t1]);
        assert_eq!(dog.time_steps(), 2);
        assert!(dog.at(0).has_edge(1, 2));
        assert!(!dog.at(1).has_edge(1, 2));
        assert_eq!(dog.edge_churn(1), 1);
    }

    #[test]
    fn edge_churn_zero_for_static_scene() {
        let conv = OcclusionConverter::new(0.25);
        let pos = line_positions();
        let dog = DynamicOcclusionGraph::from_trajectories(&conv, 0, &[pos.clone(), pos]);
        assert_eq!(dog.edge_churn(1), 0);
    }
}
