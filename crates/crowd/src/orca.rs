//! Optimal Reciprocal Collision Avoidance (ORCA) velocity computation.
//!
//! This reimplements the velocity-obstacle construction and the incremental
//! 2-D linear program of the RVO2 library [71] that the paper uses to
//! simulate crowd trajectories for the Timik and SMM datasets. Each
//! neighboring agent induces a half-plane constraint on the new velocity;
//! the LP returns the feasible velocity closest to the preferred one, with a
//! 3-D fallback that minimally violates constraints in dense crowds.

use xr_graph::geom::Point2;

/// A directed line: the permitted half-plane is to the *left* of
/// `point + t · direction`.
#[derive(Debug, Clone, Copy)]
pub struct OrcaLine {
    /// A point on the boundary line.
    pub point: Point2,
    /// Unit direction of the boundary line.
    pub direction: Point2,
}

/// State of one agent relevant to ORCA.
#[derive(Debug, Clone, Copy)]
pub struct AgentState {
    pub position: Point2,
    pub velocity: Point2,
    pub radius: f64,
}

/// Builds the ORCA half-plane constraint induced on agent `a` by agent `b`.
///
/// `time_horizon` is the window (seconds) within which collisions are
/// avoided; `time_step` is the simulation step used for the already-colliding
/// branch. The reciprocal assumption gives each agent half of the avoidance
/// responsibility.
pub fn orca_line(a: &AgentState, b: &AgentState, time_horizon: f64, time_step: f64) -> OrcaLine {
    let relative_position = b.position - a.position;
    let relative_velocity = a.velocity - b.velocity;
    let dist_sq = relative_position.norm_sq();
    let combined_radius = a.radius + b.radius;
    let combined_radius_sq = combined_radius * combined_radius;

    let (direction, u);

    if dist_sq > combined_radius_sq {
        // No collision yet: constrain against the truncated velocity obstacle.
        let inv_horizon = 1.0 / time_horizon;
        // Vector from the cutoff-circle center to the relative velocity.
        let w = relative_velocity - relative_position * inv_horizon;
        let w_len_sq = w.norm_sq();
        let dot1 = w.dot(relative_position);

        if dot1 < 0.0 && dot1 * dot1 > combined_radius_sq * w_len_sq {
            // Project on the cutoff circle.
            let w_len = w_len_sq.sqrt();
            let unit_w = w / w_len;
            direction = Point2::new(unit_w.y, -unit_w.x);
            u = unit_w * (combined_radius * inv_horizon - w_len);
        } else {
            // Project on the nearest leg of the cone.
            let leg = (dist_sq - combined_radius_sq).sqrt();
            if relative_position.cross(w) > 0.0 {
                direction = Point2::new(
                    relative_position.x * leg - relative_position.y * combined_radius,
                    relative_position.x * combined_radius + relative_position.y * leg,
                ) / dist_sq;
            } else {
                direction = -Point2::new(
                    relative_position.x * leg + relative_position.y * combined_radius,
                    -relative_position.x * combined_radius + relative_position.y * leg,
                ) / dist_sq;
            }
            let dot2 = relative_velocity.dot(direction);
            u = direction * dot2 - relative_velocity;
        }
    } else {
        // Already colliding: push apart within one time step.
        let inv_time_step = 1.0 / time_step;
        let w = relative_velocity - relative_position * inv_time_step;
        let w_len = w.norm().max(1e-12);
        let unit_w = w / w_len;
        direction = Point2::new(unit_w.y, -unit_w.x);
        u = unit_w * (combined_radius * inv_time_step - w_len);
    }

    OrcaLine { point: a.velocity + u * 0.5, direction }
}

/// Solves the 1-D LP on constraint line `line_no`, keeping all earlier
/// constraints satisfied and speed ≤ `max_speed`. Returns the optimal point
/// on the line, or `None` when infeasible.
fn linear_program1(
    lines: &[OrcaLine],
    line_no: usize,
    max_speed: f64,
    opt_velocity: Point2,
    direction_opt: bool,
) -> Option<Point2> {
    let line = lines[line_no];
    let dot = line.point.dot(line.direction);
    let discriminant = dot * dot + max_speed * max_speed - line.point.norm_sq();
    if discriminant < 0.0 {
        return None; // max-speed circle misses the line entirely
    }
    let sqrt_disc = discriminant.sqrt();
    let mut t_left = -dot - sqrt_disc;
    let mut t_right = -dot + sqrt_disc;

    for prev in lines.iter().take(line_no) {
        let denominator = line.direction.cross(prev.direction);
        let numerator = prev.direction.cross(line.point - prev.point);
        if denominator.abs() <= 1e-12 {
            // parallel lines
            if numerator < 0.0 {
                return None;
            }
            continue;
        }
        let t = numerator / denominator;
        if denominator >= 0.0 {
            t_right = t_right.min(t);
        } else {
            t_left = t_left.max(t);
        }
        if t_left > t_right {
            return None;
        }
    }

    let t = if direction_opt {
        // optimize direction: take extreme point in the optimization direction
        if opt_velocity.dot(line.direction) > 0.0 {
            t_right
        } else {
            t_left
        }
    } else {
        // optimize closest point to opt_velocity
        (line.direction.dot(opt_velocity - line.point)).clamp(t_left, t_right)
    };
    Some(line.point + line.direction * t)
}

/// Solves the 2-D LP: the velocity with norm ≤ `max_speed` satisfying all
/// half-plane constraints, closest to `opt_velocity` (or farthest along it
/// when `direction_opt`). Returns the number of constraints satisfied before
/// failure and the best velocity found.
fn linear_program2(
    lines: &[OrcaLine],
    max_speed: f64,
    opt_velocity: Point2,
    direction_opt: bool,
) -> (usize, Point2) {
    let mut result = if direction_opt {
        // opt_velocity is a unit direction
        opt_velocity * max_speed
    } else if opt_velocity.norm_sq() > max_speed * max_speed {
        opt_velocity.normalized() * max_speed
    } else {
        opt_velocity
    };

    for (i, line) in lines.iter().enumerate() {
        if line.direction.cross(line.point - result) > 0.0 {
            // current result violates constraint i
            match linear_program1(lines, i, max_speed, opt_velocity, direction_opt) {
                Some(v) => result = v,
                None => return (i, result),
            }
        }
    }
    (lines.len(), result)
}

/// 3-D fallback: when the 2-D LP is infeasible, minimize the maximum
/// constraint violation (projective LP on penetration depth).
fn linear_program3(lines: &[OrcaLine], begin_line: usize, max_speed: f64, result: &mut Point2) {
    let mut distance = 0.0;
    for i in begin_line..lines.len() {
        if lines[i].direction.cross(lines[i].point - *result) > distance {
            // result violates constraint i beyond current max violation
            let mut proj_lines: Vec<OrcaLine> = Vec::with_capacity(i);
            for prev in lines.iter().take(i) {
                let determinant = lines[i].direction.cross(prev.direction);
                let point = if determinant.abs() <= 1e-12 {
                    if lines[i].direction.dot(prev.direction) > 0.0 {
                        continue; // same direction: redundant
                    }
                    (lines[i].point + prev.point) * 0.5
                } else {
                    lines[i].point
                        + lines[i].direction
                            * (prev.direction.cross(lines[i].point - prev.point) / determinant)
                };
                let direction = (prev.direction - lines[i].direction).normalized();
                proj_lines.push(OrcaLine { point, direction });
            }
            let temp = *result;
            let opt_dir = Point2::new(-lines[i].direction.y, lines[i].direction.x);
            let (count, v) = linear_program2(&proj_lines, max_speed, opt_dir, true);
            if count >= proj_lines.len() {
                *result = v;
            } else {
                *result = temp; // keep previous on numerical failure
            }
            distance = lines[i].direction.cross(lines[i].point - *result);
        }
    }
}

/// Computes the ORCA-optimal new velocity given half-plane constraints.
pub fn solve_velocity(lines: &[OrcaLine], max_speed: f64, preferred: Point2) -> Point2 {
    let (count, mut result) = linear_program2(lines, max_speed, preferred, false);
    if count < lines.len() {
        linear_program3(lines, count, max_speed, &mut result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_returns_preferred() {
        let v = solve_velocity(&[], 2.0, Point2::new(1.0, 0.5));
        assert_eq!(v, Point2::new(1.0, 0.5));
    }

    #[test]
    fn max_speed_clamps_preferred() {
        let v = solve_velocity(&[], 1.0, Point2::new(3.0, 4.0));
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!((v.normalized().dot(Point2::new(0.6, 0.8)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_halfplane_projects() {
        // Constraint: velocity must have y >= 1 (line through (0,1) pointing +x,
        // left side is y > 1).
        let line = OrcaLine { point: Point2::new(0.0, 1.0), direction: Point2::new(1.0, 0.0) };
        let v = solve_velocity(&[line], 5.0, Point2::new(2.0, 0.0));
        assert!((v.y - 1.0).abs() < 1e-9, "projected onto boundary, got {v:?}");
        assert!((v.x - 2.0).abs() < 1e-9);
        // already-feasible preferred velocity is untouched
        let v2 = solve_velocity(&[line], 5.0, Point2::new(0.0, 3.0));
        assert_eq!(v2, Point2::new(0.0, 3.0));
    }

    #[test]
    fn head_on_constraint_pushes_sideways() {
        // Two agents approaching head-on along x; the induced half-plane must
        // forbid continuing straight at full speed.
        let a = AgentState { position: Point2::new(0.0, 0.0), velocity: Point2::new(1.0, 0.0), radius: 0.3 };
        let b = AgentState { position: Point2::new(2.0, 0.0), velocity: Point2::new(-1.0, 0.0), radius: 0.3 };
        let line = orca_line(&a, &b, 2.0, 0.1);
        let v = solve_velocity(&[line], 1.5, Point2::new(1.0, 0.0));
        // New velocity must deviate from pure +x (gain a lateral component or slow down).
        assert!(v.y.abs() > 1e-6 || v.x < 1.0 - 1e-6, "velocity unchanged: {v:?}");
    }

    #[test]
    fn colliding_agents_separate() {
        // Overlapping agents: the collision branch must push them apart.
        let a = AgentState { position: Point2::new(0.0, 0.0), velocity: Point2::zero(), radius: 0.4 };
        let b = AgentState { position: Point2::new(0.3, 0.0), velocity: Point2::zero(), radius: 0.4 };
        let line = orca_line(&a, &b, 2.0, 0.1);
        let v = solve_velocity(&[line], 2.0, Point2::zero());
        // a must move away from b, i.e. in -x direction
        assert!(v.x < -1e-6, "agent did not retreat: {v:?}");
    }

    #[test]
    fn infeasible_constraints_fall_back_gracefully() {
        // Two opposing half-planes with no intersection inside the speed disk:
        // y >= 3 and y <= -3 with max speed 1. LP3 should return something
        // finite with norm <= max_speed (plus small numerical slack).
        let l1 = OrcaLine { point: Point2::new(0.0, 3.0), direction: Point2::new(1.0, 0.0) };
        let l2 = OrcaLine { point: Point2::new(0.0, -3.0), direction: Point2::new(-1.0, 0.0) };
        let v = solve_velocity(&[l1, l2], 1.0, Point2::new(0.5, 0.0));
        assert!(v.x.is_finite() && v.y.is_finite());
        assert!(v.norm() <= 1.0 + 1e-6);
    }

    #[test]
    fn symmetric_encounter_is_reciprocal() {
        // Mirror-image agents produce mirror-image constraints.
        let a = AgentState { position: Point2::new(0.0, 0.0), velocity: Point2::new(1.0, 0.0), radius: 0.3 };
        let b = AgentState { position: Point2::new(2.0, 0.0), velocity: Point2::new(-1.0, 0.0), radius: 0.3 };
        let la = orca_line(&a, &b, 2.0, 0.1);
        let lb = orca_line(&b, &a, 2.0, 0.1);
        assert!((la.point.x + lb.point.x).abs() < 1e-9, "{la:?} vs {lb:?}");
        assert!((la.direction.x + lb.direction.x).abs() < 1e-9);
    }
}
