//! # xr-crowd
//!
//! ORCA-style reciprocal collision avoidance, reimplementing the crowd
//! simulation role the paper delegates to the RVO2 library [71]: generating
//! smooth, non-colliding trajectories for conferencing-room participants.
//!
//! * [`orca`] — the per-pair velocity-obstacle half-plane construction and
//!   the incremental 2-D linear program (with 3-D fallback for dense crowds).
//! * [`simulator`] — agents, rooms, and the stepping loop used by the
//!   dataset scenario generators.

pub mod obstacles;
pub mod orca;
pub mod orca32;
pub mod simulator;

pub use obstacles::{segments_intersect, SegmentObstacle};
pub use orca::{orca_line, solve_velocity, AgentState, OrcaLine};
pub use orca32::{orca_line_f32, solve_velocity_f32, AgentStateF32, OrcaLineF32, Point2F32};
pub use simulator::{Agent, CrowdSimulator, Room, SimConfig};
