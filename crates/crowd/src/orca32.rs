//! f32 serving port of the ORCA half-plane solver.
//!
//! Mirrors [`crate::orca`] branch for branch in single precision for the
//! serve-time path, where trajectories feed inference (no gradients, no
//! bit-exact replay requirement). The branchy incremental LP stays scalar —
//! its control flow defeats lane parallelism — but the all-pairs
//! neighborhood prefilter, the dominant O(n) data-parallel step per agent,
//! gets a wide-lane SIMD kernel ([`dist_sq_batch_f32`]) with a bit-identical
//! scalar reference, dispatched at runtime via
//! [`xr_tensor::serve32::simd_enabled`] (and forced scalar under
//! `AFTER_NO_SIMD=1`).

/// 2-D point in f32 with just the vector ops the solver needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2F32 {
    pub x: f32,
    pub y: f32,
}

impl Point2F32 {
    /// A point from coordinates.
    pub fn new(x: f32, y: f32) -> Self {
        Point2F32 { x, y }
    }

    /// The origin.
    pub fn zero() -> Self {
        Point2F32 { x: 0.0, y: 0.0 }
    }

    /// Down-converts an f64 point.
    pub fn from_f64(p: xr_graph::geom::Point2) -> Self {
        Point2F32 { x: p.x as f32, y: p.y as f32 }
    }

    /// Dot product.
    pub fn dot(self, o: Point2F32) -> f32 {
        self.x * o.x + self.y * o.y
    }

    /// 2-D cross product (z component).
    pub fn cross(self, o: Point2F32) -> f32 {
        self.x * o.y - self.y * o.x
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean norm.
    pub fn norm(self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Unit vector; zero-length inputs (norm < 1e-6) return zero.
    pub fn normalized(self) -> Point2F32 {
        let n = self.norm();
        if n < 1e-6 {
            Point2F32::zero()
        } else {
            self / n
        }
    }
}

impl std::ops::Add for Point2F32 {
    type Output = Point2F32;
    fn add(self, o: Point2F32) -> Point2F32 {
        Point2F32::new(self.x + o.x, self.y + o.y)
    }
}

impl std::ops::Sub for Point2F32 {
    type Output = Point2F32;
    fn sub(self, o: Point2F32) -> Point2F32 {
        Point2F32::new(self.x - o.x, self.y - o.y)
    }
}

impl std::ops::Neg for Point2F32 {
    type Output = Point2F32;
    fn neg(self) -> Point2F32 {
        Point2F32::new(-self.x, -self.y)
    }
}

impl std::ops::Mul<f32> for Point2F32 {
    type Output = Point2F32;
    fn mul(self, s: f32) -> Point2F32 {
        Point2F32::new(self.x * s, self.y * s)
    }
}

impl std::ops::Div<f32> for Point2F32 {
    type Output = Point2F32;
    fn div(self, s: f32) -> Point2F32 {
        Point2F32::new(self.x / s, self.y / s)
    }
}

/// f32 directed line: permitted half-plane is to the left of
/// `point + t · direction`.
#[derive(Debug, Clone, Copy)]
pub struct OrcaLineF32 {
    /// A point on the boundary line.
    pub point: Point2F32,
    /// Unit direction of the boundary line.
    pub direction: Point2F32,
}

/// f32 agent state relevant to ORCA.
#[derive(Debug, Clone, Copy)]
pub struct AgentStateF32 {
    pub position: Point2F32,
    pub velocity: Point2F32,
    pub radius: f32,
}

/// Squared distances from `origin` to each point in `xs`/`ys` (structure-of-
/// arrays), the per-agent neighborhood prefilter. Runtime SIMD dispatch; the
/// AVX2 kernel performs the identical sub/mul/add per lane so scalar and
/// wide results are bit-equal.
pub fn dist_sq_batch_f32(origin: Point2F32, xs: &[f32], ys: &[f32], out: &mut [f32]) {
    debug_assert_eq!(xs.len(), ys.len());
    debug_assert_eq!(xs.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if xr_tensor::serve32::simd_enabled() && xs.len() >= xr_tensor::serve32::LANES {
        // SAFETY: simd_enabled() verified AVX2 at runtime.
        unsafe { dist_sq_batch_f32_avx2(origin, xs, ys, out) };
        return;
    }
    dist_sq_batch_f32_scalar(origin, xs, ys, out);
}

/// Scalar reference for the distance prefilter.
pub fn dist_sq_batch_f32_scalar(origin: Point2F32, xs: &[f32], ys: &[f32], out: &mut [f32]) {
    for i in 0..xs.len() {
        let dx = xs[i] - origin.x;
        let dy = ys[i] - origin.y;
        out[i] = dx * dx + dy * dy;
    }
}

/// AVX2 distance prefilter: 8 agents per lane.
///
/// # Safety
///
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dist_sq_batch_f32_avx2(origin: Point2F32, xs: &[f32], ys: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    const LANES: usize = xr_tensor::serve32::LANES;
    let n = xs.len();
    let n8 = n - n % LANES;
    let ox = _mm256_set1_ps(origin.x);
    let oy = _mm256_set1_ps(origin.y);
    let mut i = 0;
    while i < n8 {
        let dx = _mm256_sub_ps(_mm256_loadu_ps(xs.as_ptr().add(i)), ox);
        let dy = _mm256_sub_ps(_mm256_loadu_ps(ys.as_ptr().add(i)), oy);
        let d = _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), d);
        i += LANES;
    }
    for j in n8..n {
        let dx = xs[j] - origin.x;
        let dy = ys[j] - origin.y;
        out[j] = dx * dx + dy * dy;
    }
}

/// f32 port of [`crate::orca::orca_line`]: the half-plane constraint induced
/// on agent `a` by agent `b`.
pub fn orca_line_f32(a: &AgentStateF32, b: &AgentStateF32, time_horizon: f32, time_step: f32) -> OrcaLineF32 {
    let relative_position = b.position - a.position;
    let relative_velocity = a.velocity - b.velocity;
    let dist_sq = relative_position.norm_sq();
    let combined_radius = a.radius + b.radius;
    let combined_radius_sq = combined_radius * combined_radius;

    let (direction, u);

    if dist_sq > combined_radius_sq {
        // No collision yet: constrain against the truncated velocity obstacle.
        let inv_horizon = 1.0 / time_horizon;
        let w = relative_velocity - relative_position * inv_horizon;
        let w_len_sq = w.norm_sq();
        let dot1 = w.dot(relative_position);

        if dot1 < 0.0 && dot1 * dot1 > combined_radius_sq * w_len_sq {
            // Project on the cutoff circle.
            let w_len = w_len_sq.sqrt();
            let unit_w = w / w_len;
            direction = Point2F32::new(unit_w.y, -unit_w.x);
            u = unit_w * (combined_radius * inv_horizon - w_len);
        } else {
            // Project on the nearest leg of the cone.
            let leg = (dist_sq - combined_radius_sq).sqrt();
            if relative_position.cross(w) > 0.0 {
                direction = Point2F32::new(
                    relative_position.x * leg - relative_position.y * combined_radius,
                    relative_position.x * combined_radius + relative_position.y * leg,
                ) / dist_sq;
            } else {
                direction = -Point2F32::new(
                    relative_position.x * leg + relative_position.y * combined_radius,
                    -relative_position.x * combined_radius + relative_position.y * leg,
                ) / dist_sq;
            }
            let dot2 = relative_velocity.dot(direction);
            u = direction * dot2 - relative_velocity;
        }
    } else {
        // Already colliding: push apart within one time step.
        let inv_time_step = 1.0 / time_step;
        let w = relative_velocity - relative_position * inv_time_step;
        let w_len = w.norm().max(1e-6);
        let unit_w = w / w_len;
        direction = Point2F32::new(unit_w.y, -unit_w.x);
        u = unit_w * (combined_radius * inv_time_step - w_len);
    }

    OrcaLineF32 { point: a.velocity + u * 0.5, direction }
}

/// f32 port of the 1-D LP on constraint line `line_no`.
fn linear_program1_f32(
    lines: &[OrcaLineF32],
    line_no: usize,
    max_speed: f32,
    opt_velocity: Point2F32,
    direction_opt: bool,
) -> Option<Point2F32> {
    let line = lines[line_no];
    let dot = line.point.dot(line.direction);
    let discriminant = dot * dot + max_speed * max_speed - line.point.norm_sq();
    if discriminant < 0.0 {
        return None; // max-speed circle misses the line entirely
    }
    let sqrt_disc = discriminant.sqrt();
    let mut t_left = -dot - sqrt_disc;
    let mut t_right = -dot + sqrt_disc;

    for prev in lines.iter().take(line_no) {
        let denominator = line.direction.cross(prev.direction);
        let numerator = prev.direction.cross(line.point - prev.point);
        if denominator.abs() <= 1e-6 {
            // parallel lines
            if numerator < 0.0 {
                return None;
            }
            continue;
        }
        let t = numerator / denominator;
        if denominator >= 0.0 {
            t_right = t_right.min(t);
        } else {
            t_left = t_left.max(t);
        }
        if t_left > t_right {
            return None;
        }
    }

    let t = if direction_opt {
        // optimize direction: take extreme point in the optimization direction
        if opt_velocity.dot(line.direction) > 0.0 {
            t_right
        } else {
            t_left
        }
    } else {
        // optimize closest point to opt_velocity
        (line.direction.dot(opt_velocity - line.point)).clamp(t_left, t_right)
    };
    Some(line.point + line.direction * t)
}

/// f32 port of the incremental 2-D LP.
fn linear_program2_f32(
    lines: &[OrcaLineF32],
    max_speed: f32,
    opt_velocity: Point2F32,
    direction_opt: bool,
) -> (usize, Point2F32) {
    let mut result = if direction_opt {
        // opt_velocity is a unit direction
        opt_velocity * max_speed
    } else if opt_velocity.norm_sq() > max_speed * max_speed {
        opt_velocity.normalized() * max_speed
    } else {
        opt_velocity
    };

    for (i, line) in lines.iter().enumerate() {
        if line.direction.cross(line.point - result) > 0.0 {
            // current result violates constraint i
            match linear_program1_f32(lines, i, max_speed, opt_velocity, direction_opt) {
                Some(v) => result = v,
                None => return (i, result),
            }
        }
    }
    (lines.len(), result)
}

/// f32 port of the projective 3-D fallback.
fn linear_program3_f32(lines: &[OrcaLineF32], begin_line: usize, max_speed: f32, result: &mut Point2F32) {
    let mut distance = 0.0;
    for i in begin_line..lines.len() {
        if lines[i].direction.cross(lines[i].point - *result) > distance {
            // result violates constraint i beyond current max violation
            let mut proj_lines: Vec<OrcaLineF32> = Vec::with_capacity(i);
            for prev in lines.iter().take(i) {
                let determinant = lines[i].direction.cross(prev.direction);
                let point = if determinant.abs() <= 1e-6 {
                    if lines[i].direction.dot(prev.direction) > 0.0 {
                        continue; // same direction: redundant
                    }
                    (lines[i].point + prev.point) * 0.5
                } else {
                    lines[i].point
                        + lines[i].direction
                            * (prev.direction.cross(lines[i].point - prev.point) / determinant)
                };
                let direction = (prev.direction - lines[i].direction).normalized();
                proj_lines.push(OrcaLineF32 { point, direction });
            }
            let temp = *result;
            let opt_dir = Point2F32::new(-lines[i].direction.y, lines[i].direction.x);
            let (count, v) = linear_program2_f32(&proj_lines, max_speed, opt_dir, true);
            if count >= proj_lines.len() {
                *result = v;
            } else {
                *result = temp; // keep previous on numerical failure
            }
            distance = lines[i].direction.cross(lines[i].point - *result);
        }
    }
}

/// f32 port of [`crate::orca::solve_velocity`].
pub fn solve_velocity_f32(lines: &[OrcaLineF32], max_speed: f32, preferred: Point2F32) -> Point2F32 {
    let (count, mut result) = linear_program2_f32(lines, max_speed, preferred, false);
    if count < lines.len() {
        linear_program3_f32(lines, count, max_speed, &mut result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orca::{orca_line, solve_velocity, AgentState, OrcaLine};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xr_graph::geom::Point2;

    #[test]
    fn dist_sq_simd_matches_scalar_bitwise_including_tails() {
        let mut rng = StdRng::seed_from_u64(21);
        for &n in &[1usize, 7, 8, 9, 16, 23] {
            let xs: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0) as f32).collect();
            let ys: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0) as f32).collect();
            let origin = Point2F32::new(rng.gen_range(-5.0..5.0) as f32, rng.gen_range(-5.0..5.0) as f32);
            let mut scalar = vec![0.0f32; n];
            let mut wide = vec![0.0f32; n];
            dist_sq_batch_f32_scalar(origin, &xs, &ys, &mut scalar);
            #[cfg(target_arch = "x86_64")]
            if is_x86_feature_detected!("avx2") {
                unsafe { dist_sq_batch_f32_avx2(origin, &xs, &ys, &mut wide) };
                for i in 0..n {
                    assert_eq!(scalar[i].to_bits(), wide[i].to_bits(), "n={n} lane {i}");
                }
            }
            dist_sq_batch_f32(origin, &xs, &ys, &mut wide);
            for i in 0..n {
                assert_eq!(scalar[i].to_bits(), wide[i].to_bits(), "dispatch n={n} lane {i}");
            }
            assert!(scalar.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn unconstrained_returns_preferred() {
        let v = solve_velocity_f32(&[], 2.0, Point2F32::new(1.0, 0.5));
        assert_eq!(v, Point2F32::new(1.0, 0.5));
    }

    #[test]
    fn single_halfplane_projects() {
        let line = OrcaLineF32 { point: Point2F32::new(0.0, 1.0), direction: Point2F32::new(1.0, 0.0) };
        let v = solve_velocity_f32(&[line], 5.0, Point2F32::new(2.0, 0.0));
        assert!((v.y - 1.0).abs() < 1e-5, "projected onto boundary, got {v:?}");
        assert!((v.x - 2.0).abs() < 1e-5);
    }

    #[test]
    fn colliding_agents_separate() {
        let a = AgentStateF32 { position: Point2F32::zero(), velocity: Point2F32::zero(), radius: 0.4 };
        let b =
            AgentStateF32 { position: Point2F32::new(0.3, 0.0), velocity: Point2F32::zero(), radius: 0.4 };
        let line = orca_line_f32(&a, &b, 2.0, 0.1);
        let v = solve_velocity_f32(&[line], 2.0, Point2F32::zero());
        assert!(v.x < -1e-6, "agent did not retreat: {v:?}");
    }

    #[test]
    fn infeasible_constraints_fall_back_gracefully() {
        let l1 = OrcaLineF32 { point: Point2F32::new(0.0, 3.0), direction: Point2F32::new(1.0, 0.0) };
        let l2 = OrcaLineF32 { point: Point2F32::new(0.0, -3.0), direction: Point2F32::new(-1.0, 0.0) };
        let v = solve_velocity_f32(&[l1, l2], 1.0, Point2F32::new(0.5, 0.0));
        assert!(v.x.is_finite() && v.y.is_finite());
        assert!(v.norm() <= 1.0 + 1e-4);
    }

    /// The f32 solver tracks the f64 solver within single-precision tolerance
    /// on random multi-agent scenes.
    #[test]
    fn f32_solver_tracks_f64_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(22);
        for case in 0..200 {
            let n_neighbors = rng.gen_range(1..6);
            let me64 = AgentState {
                position: Point2::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)),
                velocity: Point2::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                radius: 0.3,
            };
            let mut lines64: Vec<OrcaLine> = Vec::new();
            let mut lines32: Vec<OrcaLineF32> = Vec::new();
            for _ in 0..n_neighbors {
                let other64 = AgentState {
                    position: Point2::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)),
                    velocity: Point2::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                    radius: 0.3,
                };
                // Skip coincident agents: the collision branch normalizes a
                // near-zero w and diverges between precisions.
                if (other64.position - me64.position).norm() < 1e-3 {
                    continue;
                }
                lines64.push(orca_line(&me64, &other64, 2.0, 0.25));
                let me32 = AgentStateF32 {
                    position: Point2F32::from_f64(me64.position),
                    velocity: Point2F32::from_f64(me64.velocity),
                    radius: 0.3,
                };
                let other32 = AgentStateF32 {
                    position: Point2F32::from_f64(other64.position),
                    velocity: Point2F32::from_f64(other64.velocity),
                    radius: 0.3,
                };
                lines32.push(orca_line_f32(&me32, &other32, 2.0, 0.25));
            }
            let pref64 = Point2::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
            let v64 = solve_velocity(&lines64, 1.5, pref64);
            let v32 = solve_velocity_f32(&lines32, 1.5, Point2F32::from_f64(pref64));
            // Constraint sets near LP degeneracy can legitimately diverge;
            // require agreement on the overwhelming majority, checked via a
            // generous per-case tolerance.
            let dx = (v64.x - v32.x as f64).abs();
            let dy = (v64.y - v32.y as f64).abs();
            assert!(dx < 5e-2 && dy < 5e-2, "case {case}: f64 {v64:?} vs f32 {v32:?} (n={n_neighbors})");
        }
    }
}
