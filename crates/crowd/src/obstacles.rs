//! Static line-segment obstacles for the crowd simulator.
//!
//! RVO2 supports polygonal obstacles through dedicated obstacle-ORCA
//! constraints; conferencing rooms need at least walls, stages, and podiums.
//! We implement the standard simplification: for each nearby segment, the
//! closest point on the segment acts as a static zero-velocity disk, and the
//! agent takes *full* (non-reciprocal) avoidance responsibility — obstacles
//! do not move out of the way.

use xr_graph::geom::Point2;

use crate::orca::{orca_line, AgentState, OrcaLine};

/// A static line-segment obstacle with a physical thickness.
#[derive(Debug, Clone, Copy)]
pub struct SegmentObstacle {
    /// One endpoint.
    pub a: Point2,
    /// The other endpoint.
    pub b: Point2,
    /// Half-thickness of the obstacle (meters).
    pub thickness: f64,
}

impl SegmentObstacle {
    /// A thin wall between two points.
    pub fn wall(a: Point2, b: Point2) -> Self {
        SegmentObstacle { a, b, thickness: 0.05 }
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Point2) -> Point2 {
        let ab = self.b - self.a;
        let len_sq = ab.norm_sq();
        if len_sq < 1e-12 {
            return self.a;
        }
        let t = ((p - self.a).dot(ab) / len_sq).clamp(0.0, 1.0);
        self.a + ab * t
    }

    /// Distance from `p` to the obstacle surface (0 when inside).
    pub fn distance(&self, p: Point2) -> f64 {
        (self.closest_point(p).distance(p) - self.thickness).max(0.0)
    }

    /// Builds the ORCA half-plane constraint this obstacle induces on an
    /// agent, or `None` when the obstacle is beyond `range`.
    pub fn orca_line(
        &self,
        agent: &AgentState,
        time_horizon: f64,
        time_step: f64,
        range: f64,
    ) -> Option<OrcaLine> {
        let closest = self.closest_point(agent.position);
        if closest.distance(agent.position) > range {
            return None;
        }
        let obstacle_state =
            AgentState { position: closest, velocity: Point2::zero(), radius: self.thickness };
        let half = orca_line(agent, &obstacle_state, time_horizon, time_step);
        // full responsibility: the obstacle will not take its half-step, so
        // the agent doubles the correction `u` (line.point = v + u instead
        // of v + u/2 ⇒ shift the point by the same correction again)
        let correction = (half.point - agent.velocity) * 2.0;
        Some(OrcaLine { point: agent.velocity + correction, direction: half.direction })
    }

    /// `true` when the open segment `p → q` crosses the obstacle's center
    /// line (used by tests to prove no tunneling).
    pub fn crossed_by(&self, p: Point2, q: Point2) -> bool {
        segments_intersect(self.a, self.b, p, q)
    }
}

fn orient(a: Point2, b: Point2, c: Point2) -> f64 {
    (b - a).cross(c - a)
}

/// Proper segment intersection (shared endpoints count as intersecting).
pub fn segments_intersect(a: Point2, b: Point2, c: Point2, d: Point2) -> bool {
    let d1 = orient(c, d, a);
    let d2 = orient(c, d, b);
    let d3 = orient(a, b, c);
    let d4 = orient(a, b, d);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    let on_segment = |p: Point2, q: Point2, r: Point2| -> bool {
        orient(p, q, r).abs() < 1e-12
            && r.x >= p.x.min(q.x) - 1e-12
            && r.x <= p.x.max(q.x) + 1e-12
            && r.y >= p.y.min(q.y) - 1e-12
            && r.y <= p.y.max(q.y) + 1e-12
    };
    on_segment(c, d, a) || on_segment(c, d, b) || on_segment(a, b, c) || on_segment(a, b, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> SegmentObstacle {
        SegmentObstacle::wall(Point2::new(2.0, 0.0), Point2::new(2.0, 4.0))
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg();
        assert_eq!(s.closest_point(Point2::new(0.0, 2.0)), Point2::new(2.0, 2.0));
        assert_eq!(s.closest_point(Point2::new(5.0, -3.0)), Point2::new(2.0, 0.0));
        assert_eq!(s.closest_point(Point2::new(1.0, 9.0)), Point2::new(2.0, 4.0));
    }

    #[test]
    fn distance_accounts_for_thickness() {
        let s = seg();
        assert!((s.distance(Point2::new(0.0, 2.0)) - 1.95).abs() < 1e-12);
        assert_eq!(s.distance(Point2::new(2.0, 2.0)), 0.0);
    }

    #[test]
    fn orca_line_range_gate() {
        let s = seg();
        let agent =
            AgentState { position: Point2::new(0.0, 2.0), velocity: Point2::new(1.0, 0.0), radius: 0.25 };
        assert!(s.orca_line(&agent, 2.0, 0.25, 3.0).is_some());
        assert!(s.orca_line(&agent, 2.0, 0.25, 1.0).is_none());
    }

    #[test]
    fn obstacle_constraint_blocks_head_on_velocity() {
        // agent charging straight at the wall must be deflected/slowed
        let s = seg();
        let agent =
            AgentState { position: Point2::new(1.0, 2.0), velocity: Point2::new(1.0, 0.0), radius: 0.25 };
        let line = s.orca_line(&agent, 2.0, 0.25, 5.0).unwrap();
        let v = crate::orca::solve_velocity(&[line], 1.5, Point2::new(1.0, 0.0));
        assert!(v.x < 1.0 - 1e-6 || v.y.abs() > 1e-6, "velocity unchanged: {v:?}");
    }

    #[test]
    fn segment_intersection_cases() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 2.0);
        assert!(segments_intersect(a, b, Point2::new(0.0, 2.0), Point2::new(2.0, 0.0)));
        assert!(!segments_intersect(a, b, Point2::new(3.0, 0.0), Point2::new(4.0, 1.0)));
        // collinear overlap
        assert!(segments_intersect(a, b, Point2::new(1.0, 1.0), Point2::new(3.0, 3.0)));
        // touching endpoint
        assert!(segments_intersect(a, b, b, Point2::new(3.0, 0.0)));
    }
}
