//! Multi-agent crowd simulator driving the XR conferencing-room trajectories.
//!
//! A thin orchestration layer over [`crate::orca`]: each step computes every
//! agent's preferred velocity (toward its goal), builds ORCA constraints
//! against its nearest neighbors, solves for the new velocity, integrates
//! positions, and clamps agents into the rectangular room (a stand-in for
//! RVO2's polygonal obstacle handling, adequate for a conferencing room).

use xr_graph::geom::Point2;

use crate::obstacles::SegmentObstacle;
use crate::orca::{orca_line, solve_velocity, AgentState};

/// One simulated participant.
#[derive(Debug, Clone)]
pub struct Agent {
    /// Current position (meters).
    pub position: Point2,
    /// Current velocity (m/s).
    pub velocity: Point2,
    /// Navigation goal; the agent steers toward it at `pref_speed`.
    pub goal: Point2,
    /// Body radius (meters).
    pub radius: f64,
    /// Preferred walking speed (m/s).
    pub pref_speed: f64,
    /// Hard speed cap (m/s).
    pub max_speed: f64,
}

impl Agent {
    /// An agent at `position` heading to `goal` with human-scale defaults
    /// (0.25 m radius, 1.0 m/s preferred speed).
    pub fn new(position: Point2, goal: Point2) -> Self {
        Agent { position, velocity: Point2::zero(), goal, radius: 0.25, pref_speed: 1.0, max_speed: 1.5 }
    }

    /// `true` when the agent is within `eps` of its goal.
    pub fn at_goal(&self, eps: f64) -> bool {
        self.position.distance(self.goal) <= eps
    }
}

/// Axis-aligned rectangular room.
#[derive(Debug, Clone, Copy)]
pub struct Room {
    pub min: Point2,
    pub max: Point2,
}

impl Room {
    /// A `width × height` room with its corner at the origin.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "room must have positive area");
        Room { min: Point2::zero(), max: Point2::new(width, height) }
    }

    /// Clamps a point into the room, leaving a `margin` from the walls.
    pub fn clamp(&self, p: Point2, margin: f64) -> Point2 {
        Point2::new(
            p.x.clamp(self.min.x + margin, self.max.x - margin),
            p.y.clamp(self.min.y + margin, self.max.y - margin),
        )
    }

    /// `true` when `p` lies inside the room (inclusive).
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Room width.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Room height.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }
}

/// ORCA crowd simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Integration step (seconds).
    pub time_step: f64,
    /// Collision-avoidance look-ahead (seconds).
    pub time_horizon: f64,
    /// Only neighbors within this distance induce constraints (meters).
    pub neighbor_dist: f64,
    /// At most this many nearest neighbors induce constraints.
    pub max_neighbors: usize,
    /// Find neighbors through a uniform spatial grid (cell size =
    /// `neighbor_dist`) instead of an O(N²) all-pairs scan. Both paths
    /// produce bit-identical trajectories; the brute-force scan is kept for
    /// equivalence tests and as the baseline in the before/after benchmark.
    pub use_spatial_grid: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            time_step: 0.25,
            time_horizon: 2.0,
            neighbor_dist: 3.0,
            max_neighbors: 10,
            use_spatial_grid: true,
        }
    }
}

/// Uniform spatial grid over the agents' bounding box, rebuilt each step.
///
/// Cell size equals the neighbor query radius, so all neighbors within
/// `neighbor_dist` of a point lie in the point's cell or one of its 8
/// surrounding cells. Binning is O(N); a query touches only the agents in
/// those ≤ 9 cells, replacing the O(N²) all-pairs scan that dominated the
/// N=500 sensitivity sweep.
struct NeighborGrid {
    inv_cell: f64,
    min: Point2,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<usize>>,
}

impl NeighborGrid {
    /// Bins `points` into cells of side `cell_size` (clamped away from 0).
    fn build(points: &[Point2], cell_size: f64) -> Self {
        let cell = cell_size.max(1e-9);
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if points.is_empty() {
            return NeighborGrid {
                inv_cell: 1.0 / cell,
                min: Point2::zero(),
                nx: 0,
                ny: 0,
                cells: Vec::new(),
            };
        }
        let min = Point2::new(min_x, min_y);
        let nx = (((max_x - min_x) / cell).floor() as usize) + 1;
        let ny = (((max_y - min_y) / cell).floor() as usize) + 1;
        let mut grid = NeighborGrid { inv_cell: 1.0 / cell, min, nx, ny, cells: vec![Vec::new(); nx * ny] };
        for (i, p) in points.iter().enumerate() {
            let (cx, cy) = grid.cell_of(*p);
            grid.cells[cy * nx + cx].push(i);
        }
        grid
    }

    /// Cell coordinates of `p`, clamped into the grid.
    fn cell_of(&self, p: Point2) -> (usize, usize) {
        let cx =
            (((p.x - self.min.x) * self.inv_cell).floor() as isize).clamp(0, self.nx as isize - 1) as usize;
        let cy =
            (((p.y - self.min.y) * self.inv_cell).floor() as isize).clamp(0, self.ny as isize - 1) as usize;
        (cx, cy)
    }

    /// Appends the indices stored in the 3×3 cell block around `p` to `out`.
    fn gather(&self, p: Point2, out: &mut Vec<usize>) {
        if self.cells.is_empty() {
            return;
        }
        let (cx, cy) = self.cell_of(p);
        let x0 = cx.saturating_sub(1);
        let x1 = (cx + 1).min(self.nx - 1);
        let y0 = cy.saturating_sub(1);
        let y1 = (cy + 1).min(self.ny - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                out.extend_from_slice(&self.cells[y * self.nx + x]);
            }
        }
    }
}

/// The crowd simulator.
#[derive(Debug, Clone)]
pub struct CrowdSimulator {
    agents: Vec<Agent>,
    room: Room,
    config: SimConfig,
    obstacles: Vec<SegmentObstacle>,
    time: f64,
}

impl CrowdSimulator {
    /// Creates a simulator for `agents` inside `room`.
    pub fn new(agents: Vec<Agent>, room: Room, config: SimConfig) -> Self {
        CrowdSimulator { agents, room, config, obstacles: Vec::new(), time: 0.0 }
    }

    /// Adds a static segment obstacle (wall, stage edge, podium side).
    pub fn add_obstacle(&mut self, obstacle: SegmentObstacle) {
        self.obstacles.push(obstacle);
    }

    /// The registered obstacles.
    pub fn obstacles(&self) -> &[SegmentObstacle] {
        &self.obstacles
    }

    /// Immutable view of the agents.
    pub fn agents(&self) -> &[Agent] {
        &self.agents
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// `true` when the crowd is empty.
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// Elapsed simulated time (seconds).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The simulated room.
    pub fn room(&self) -> Room {
        self.room
    }

    /// Reassigns an agent's goal (waypoint policies live in the caller).
    pub fn set_goal(&mut self, agent: usize, goal: Point2) {
        self.agents[agent].goal = goal;
    }

    /// Current positions of all agents.
    pub fn positions(&self) -> Vec<Point2> {
        self.agents.iter().map(|a| a.position).collect()
    }

    /// Advances the simulation by one time step.
    pub fn step(&mut self) {
        let timer = xr_obs::start_timer();
        let n = self.agents.len();
        let states: Vec<AgentState> = self
            .agents
            .iter()
            .map(|a| AgentState { position: a.position, velocity: a.velocity, radius: a.radius })
            .collect();

        // With the grid, all agents within neighbor_dist of agent i are
        // guaranteed to land in the 3×3 cell block around i's cell.
        let grid = if self.config.use_spatial_grid {
            let positions: Vec<Point2> = states.iter().map(|s| s.position).collect();
            Some(NeighborGrid::build(&positions, self.config.neighbor_dist))
        } else {
            None
        };

        let range_sq = self.config.neighbor_dist * self.config.neighbor_dist;
        let mut candidates: Vec<usize> = Vec::new();
        let mut new_velocities = Vec::with_capacity(n);
        for i in 0..n {
            let agent = &self.agents[i];
            let to_goal = agent.goal - agent.position;
            let preferred = if to_goal.norm() < 1e-6 {
                Point2::zero()
            } else {
                to_goal.normalized() * agent.pref_speed.min(to_goal.norm() / self.config.time_step)
            };

            // nearest neighbors within range
            let mut nbrs: Vec<(f64, usize)> = match &grid {
                Some(grid) => {
                    candidates.clear();
                    grid.gather(states[i].position, &mut candidates);
                    candidates
                        .iter()
                        .filter(|&&j| j != i)
                        .map(|&j| (states[i].position.distance_sq(states[j].position), j))
                        .filter(|&(d2, _)| d2 < range_sq)
                        .collect()
                }
                None => (0..n)
                    .filter(|&j| j != i)
                    .map(|j| (states[i].position.distance_sq(states[j].position), j))
                    .filter(|&(d2, _)| d2 < range_sq)
                    .collect(),
            };
            // Sort on (distance, index): the index tiebreak makes the order
            // independent of cell visitation order, so grid and brute-force
            // paths induce the same constraints (and thus bit-identical
            // trajectories) even when distances tie.
            nbrs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            nbrs.truncate(self.config.max_neighbors);

            let mut lines: Vec<_> = nbrs
                .iter()
                .map(|&(_, j)| {
                    orca_line(&states[i], &states[j], self.config.time_horizon, self.config.time_step)
                })
                .collect();
            // static obstacles induce non-reciprocal constraints
            lines.extend(self.obstacles.iter().filter_map(|o| {
                o.orca_line(
                    &states[i],
                    self.config.time_horizon,
                    self.config.time_step,
                    self.config.neighbor_dist,
                )
            }));

            new_velocities.push(solve_velocity(&lines, agent.max_speed, preferred));
        }

        for (agent, v) in self.agents.iter_mut().zip(new_velocities) {
            agent.velocity = v;
            let raw = agent.position + v * self.config.time_step;
            agent.position = self.room.clamp(raw, agent.radius);
        }
        self.time += self.config.time_step;
        xr_obs::observe_since("xr_crowd.sim.step.ms", &[], timer);
    }

    /// Runs `steps` steps, recording positions *after* each step.
    pub fn run_recording(&mut self, steps: usize) -> Vec<Vec<Point2>> {
        let _span = xr_obs::span!("xr_crowd.sim.run", steps = steps, agents = self.agents.len());
        let mut frames = Vec::with_capacity(steps);
        for _ in 0..steps {
            self.step();
            frames.push(self.positions());
        }
        frames
    }

    /// Smallest center-to-center distance between any agent pair (∞ for < 2
    /// agents). Diagnostic for the collision-avoidance invariant.
    pub fn min_pairwise_distance(&self) -> f64 {
        let mut best = f64::INFINITY;
        for i in 0..self.agents.len() {
            for j in i + 1..self.agents.len() {
                best = best.min(self.agents[i].position.distance(self.agents[j].position));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn room_geometry() {
        let room = Room::new(10.0, 10.0);
        assert!(room.contains(Point2::new(5.0, 5.0)));
        assert!(!room.contains(Point2::new(-1.0, 5.0)));
        assert_eq!(room.clamp(Point2::new(20.0, -3.0), 0.5), Point2::new(9.5, 0.5));
        assert_eq!(room.width(), 10.0);
        assert_eq!(room.height(), 10.0);
    }

    #[test]
    fn lone_agent_reaches_goal() {
        let agents = vec![Agent::new(Point2::new(1.0, 1.0), Point2::new(8.0, 8.0))];
        let mut sim = CrowdSimulator::new(agents, Room::new(10.0, 10.0), cfg());
        for _ in 0..200 {
            sim.step();
        }
        assert!(sim.agents()[0].at_goal(0.1), "agent at {:?}", sim.agents()[0].position);
    }

    #[test]
    fn head_on_agents_swap_without_collision() {
        let agents = vec![
            Agent::new(Point2::new(1.0, 5.0), Point2::new(9.0, 5.0)),
            Agent::new(Point2::new(9.0, 5.0), Point2::new(1.0, 5.0)),
        ];
        let mut sim = CrowdSimulator::new(agents, Room::new(10.0, 10.0), cfg());
        let mut min_dist = f64::INFINITY;
        for _ in 0..200 {
            sim.step();
            min_dist = min_dist.min(sim.min_pairwise_distance());
        }
        assert!(sim.agents()[0].at_goal(0.3));
        assert!(sim.agents()[1].at_goal(0.3));
        // body radius 0.25 each → centers should stay (near) 0.5 apart
        assert!(min_dist > 0.4, "agents collided: min distance {min_dist}");
    }

    #[test]
    fn crossing_agents_avoid_each_other() {
        let agents = vec![
            Agent::new(Point2::new(1.0, 5.0), Point2::new(9.0, 5.0)),
            Agent::new(Point2::new(5.0, 1.0), Point2::new(5.0, 9.0)),
        ];
        let mut sim = CrowdSimulator::new(agents, Room::new(10.0, 10.0), cfg());
        let mut min_dist = f64::INFINITY;
        for _ in 0..150 {
            sim.step();
            min_dist = min_dist.min(sim.min_pairwise_distance());
        }
        assert!(min_dist > 0.4, "crossing agents collided: {min_dist}");
    }

    #[test]
    fn agents_stay_inside_room() {
        let agents = vec![Agent::new(Point2::new(5.0, 5.0), Point2::new(50.0, 50.0))];
        let mut sim = CrowdSimulator::new(agents, Room::new(10.0, 10.0), cfg());
        for _ in 0..100 {
            sim.step();
            assert!(sim.room().contains(sim.agents()[0].position));
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let make = || {
            let agents = vec![
                Agent::new(Point2::new(1.0, 1.0), Point2::new(9.0, 9.0)),
                Agent::new(Point2::new(9.0, 1.0), Point2::new(1.0, 9.0)),
                Agent::new(Point2::new(5.0, 9.0), Point2::new(5.0, 1.0)),
            ];
            let mut sim = CrowdSimulator::new(agents, Room::new(10.0, 10.0), cfg());
            sim.run_recording(50)
        };
        let a = make();
        let b = make();
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(b.iter()) {
            for (pa, pb) in fa.iter().zip(fb.iter()) {
                assert_eq!(pa, pb);
            }
        }
    }

    #[test]
    fn run_recording_returns_requested_frames() {
        let agents = vec![Agent::new(Point2::new(1.0, 1.0), Point2::new(2.0, 2.0))];
        let mut sim = CrowdSimulator::new(agents, Room::new(5.0, 5.0), cfg());
        let frames = sim.run_recording(7);
        assert_eq!(frames.len(), 7);
        assert_eq!(frames[0].len(), 1);
        assert!((sim.time() - 7.0 * cfg().time_step).abs() < 1e-12);
    }

    #[test]
    fn agents_route_around_a_wall() {
        use crate::obstacles::SegmentObstacle;
        // wall splits the room; the agent must go around, never through
        let wall = SegmentObstacle::wall(Point2::new(5.0, 2.0), Point2::new(5.0, 8.0));
        let agents = vec![Agent::new(Point2::new(2.0, 5.0), Point2::new(8.0, 5.0))];
        let mut sim = CrowdSimulator::new(agents, Room::new(10.0, 10.0), cfg());
        sim.add_obstacle(wall);
        let mut prev = sim.agents()[0].position;
        for _ in 0..400 {
            sim.step();
            let cur = sim.agents()[0].position;
            assert!(!wall.crossed_by(prev, cur), "agent tunneled through the wall at {cur:?}");
            prev = cur;
        }
        // ORCA is a local avoider, not a planner: with a long wall dead
        // ahead the agent may stall, but it must never pass through.
        assert!(sim.obstacles().len() == 1);
    }

    #[test]
    fn agents_slide_past_a_short_wall() {
        use crate::obstacles::SegmentObstacle;
        // short wall slightly off the straight path: the agent slides by it
        let wall = SegmentObstacle::wall(Point2::new(5.0, 4.4), Point2::new(5.0, 5.0));
        let agents = vec![Agent::new(Point2::new(2.0, 5.2), Point2::new(8.0, 5.2))];
        let mut sim = CrowdSimulator::new(agents, Room::new(10.0, 10.0), cfg());
        sim.add_obstacle(wall);
        let mut prev = sim.agents()[0].position;
        for _ in 0..300 {
            sim.step();
            let cur = sim.agents()[0].position;
            assert!(!wall.crossed_by(prev, cur), "tunneled at {cur:?}");
            prev = cur;
        }
        assert!(sim.agents()[0].at_goal(0.5), "agent stuck at {:?}", sim.agents()[0].position);
    }

    #[test]
    fn spatial_grid_matches_brute_force_scan() {
        use rand::Rng;
        use rand::SeedableRng;
        // Dense enough that many agents exceed max_neighbors and distances
        // can tie; trajectories must still be bit-identical on both paths.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let agents: Vec<Agent> = (0..60)
            .map(|_| {
                Agent::new(
                    Point2::new(rng.gen_range(0.5..11.5), rng.gen_range(0.5..11.5)),
                    Point2::new(rng.gen_range(0.5..11.5), rng.gen_range(0.5..11.5)),
                )
            })
            .collect();
        let run = |use_grid: bool| {
            let config = SimConfig { use_spatial_grid: use_grid, ..SimConfig::default() };
            let mut sim = CrowdSimulator::new(agents.clone(), Room::new(12.0, 12.0), config);
            sim.run_recording(40)
        };
        let grid = run(true);
        let brute = run(false);
        for (fg, fb) in grid.iter().zip(brute.iter()) {
            for (pg, pb) in fg.iter().zip(fb.iter()) {
                assert_eq!(pg, pb, "grid and brute-force trajectories diverged");
            }
        }
    }

    #[test]
    fn neighbor_grid_gathers_everything_in_range() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let cell = 1.5;
        let points: Vec<Point2> =
            (0..200).map(|_| Point2::new(rng.gen_range(-5.0..25.0), rng.gen_range(-3.0..9.0))).collect();
        let grid = NeighborGrid::build(&points, cell);
        let mut out = Vec::new();
        for (i, p) in points.iter().enumerate() {
            out.clear();
            grid.gather(*p, &mut out);
            for (j, q) in points.iter().enumerate() {
                if j != i && p.distance_sq(*q) < cell * cell {
                    assert!(out.contains(&j), "grid missed in-range point {j} for query {i}");
                }
            }
        }
    }

    #[test]
    fn neighbor_grid_handles_degenerate_inputs() {
        // empty point set
        let grid = NeighborGrid::build(&[], 2.0);
        let mut out = Vec::new();
        grid.gather(Point2::new(1.0, 1.0), &mut out);
        assert!(out.is_empty());
        // all points coincident (zero-extent bounding box)
        let p = Point2::new(3.0, 3.0);
        let grid = NeighborGrid::build(&[p, p, p], 2.0);
        out.clear();
        grid.gather(p, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        // query far outside the bounding box clamps into the grid
        out.clear();
        grid.gather(Point2::new(-100.0, 100.0), &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn stationary_agent_stays_put_when_unthreatened() {
        let p = Point2::new(3.0, 3.0);
        let agents = vec![Agent::new(p, p)];
        let mut sim = CrowdSimulator::new(agents, Room::new(10.0, 10.0), cfg());
        sim.step();
        assert!(sim.agents()[0].position.distance(p) < 1e-9);
    }
}
