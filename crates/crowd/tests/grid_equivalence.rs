//! Property-based check that the spatial-grid neighbor query is a pure
//! performance change: simulations with and without the grid must produce
//! bit-identical trajectories for arbitrary crowds and query radii.

use proptest::prelude::*;
use xr_crowd::{Agent, CrowdSimulator, Room, SimConfig};
use xr_graph::geom::Point2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn grid_and_brute_force_trajectories_are_identical(
        raw in proptest::collection::vec((0.05f64..0.95, 0.05f64..0.95, 0.05f64..0.95, 0.05f64..0.95), 30),
        neighbor_dist in 0.5f64..5.0,
        max_neighbors in 1usize..12,
    ) {
        let side = 12.0;
        let agents: Vec<Agent> = raw
            .iter()
            .map(|&(px, py, gx, gy)| {
                Agent::new(Point2::new(px * side, py * side), Point2::new(gx * side, gy * side))
            })
            .collect();
        let run = |use_spatial_grid: bool| {
            let config = SimConfig {
                neighbor_dist,
                max_neighbors,
                use_spatial_grid,
                ..SimConfig::default()
            };
            let mut sim = CrowdSimulator::new(agents.clone(), Room::new(side, side), config);
            sim.run_recording(25)
        };
        let grid = run(true);
        let brute = run(false);
        for (t, (fg, fb)) in grid.iter().zip(brute.iter()).enumerate() {
            for (i, (pg, pb)) in fg.iter().zip(fb.iter()).enumerate() {
                prop_assert_eq!(pg, pb, "diverged at step {} agent {}", t, i);
            }
        }
    }
}
